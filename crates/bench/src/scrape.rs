//! Scrape-and-parse test client for the live telemetry server.
//!
//! Three small pieces, all dependency-free, mirroring what real operators
//! point at `beamdyn-serve`:
//!
//! * [`http_get`] — a one-shot HTTP/1.1 GET over [`std::net::TcpStream`]
//!   returning status code and body.
//! * [`parse_exposition`] — a strict parser for the Prometheus text format
//!   (0.0.4) `GET /metrics` serves: `# TYPE` and `# HELP` tracking, labelled samples
//!   with escape handling, `NaN`/`±Inf` tokens. Any malformed line is an
//!   error with its line number, so the serve tests *round-trip* the
//!   exposition (`obs::prometheus::render` → this parser → value lookup)
//!   instead of merely grepping it.
//! * [`collect_sse`] — a Server-Sent-Events reader for `GET /events` that
//!   gathers `step` events until a count or deadline is reached.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One exposition sample: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label pairs in source order (empty for unlabelled samples).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed `/metrics` body.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Every sample, in source order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations: family name → `counter` / `gauge` / ….
    pub types: BTreeMap<String, String>,
    /// `# HELP` declarations: family name → help text.
    pub helps: BTreeMap<String, String>,
}

impl Exposition {
    /// The single unlabelled sample named `name`.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// The sample named `name` carrying `label == value`.
    pub fn labelled(&self, name: &str, label: &str, value: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.label(label) == Some(value))
            .map(|s| s.value)
    }

    /// All samples of one family (e.g. every `_bucket` of a histogram).
    pub fn family(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "NaN" => Ok(f64::NAN),
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        t => t.parse().map_err(|_| format!("bad sample value '{t}'")),
    }
}

/// Label pairs plus the unparsed remainder of the line.
type LabelsAndRest<'a> = (Vec<(String, String)>, &'a str);

/// Parses one `{key="value",…}` label block; `chars` starts after the `{`.
fn parse_labels(rest: &str) -> Result<LabelsAndRest<'_>, String> {
    let mut labels = Vec::new();
    let mut chars = rest.char_indices().peekable();
    loop {
        // Key up to '='.
        let mut key = String::new();
        for (_, c) in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        let key = key.trim().to_string();
        if key.is_empty() {
            return Err("empty label name".into());
        }
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label '{key}' value must be quoted")),
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some((_, '\\')) => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => return Err(format!("bad label escape {other:?}")),
                },
                Some((_, '"')) => break,
                Some((_, c)) => value.push(c),
                None => return Err("unterminated label value".into()),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some((_, ',')) => continue,
            Some((i, '}')) => return Ok((labels, &rest[i + 1..])),
            other => return Err(format!("expected ',' or '}}' after label, got {other:?}")),
        }
    }
}

/// Parses a complete Prometheus 0.0.4 text exposition. Blank lines and
/// unrecognised comments are skipped; `# TYPE` and `# HELP` declarations
/// are collected; every other line must be a well-formed sample.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end_matches('\r');
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err("TYPE without name".into()))?;
                    let kind = parts
                        .next()
                        .ok_or_else(|| err("TYPE without kind".into()))?;
                    if !valid_metric_name(name) {
                        return Err(err(format!("invalid family name '{name}'")));
                    }
                    out.types.insert(name.to_string(), kind.to_string());
                }
                Some("HELP") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err("HELP without name".into()))?;
                    if !valid_metric_name(name) {
                        return Err(err(format!("invalid family name '{name}'")));
                    }
                    out.helps
                        .insert(name.to_string(), parts.next().unwrap_or("").to_string());
                }
                _ => {}
            }
            continue;
        }
        // Sample: name[{labels}] value [timestamp]
        let name_end = line
            .find(|c: char| c == '{' || c.is_ascii_whitespace())
            .ok_or_else(|| err("sample without value".into()))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(err(format!("invalid metric name '{name}'")));
        }
        let rest = &line[name_end..];
        let (labels, rest) = if let Some(inner) = rest.strip_prefix('{') {
            parse_labels(inner).map_err(&err)?
        } else {
            (Vec::new(), rest)
        };
        let mut fields = rest.split_ascii_whitespace();
        let value =
            parse_value(fields.next().ok_or_else(|| err("missing value".into()))?).map_err(&err)?;
        // An optional integer timestamp may follow; anything else is junk.
        if let Some(ts) = fields.next() {
            ts.parse::<i64>()
                .map_err(|_| err(format!("bad timestamp '{ts}'")))?;
        }
        if fields.next().is_some() {
            return Err(err("trailing fields after timestamp".into()));
        }
        out.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(out)
}

/// One-shot `GET` returning `(status_code, body)`. `addr` is `host:port`.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("response without header terminator"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line: {head:?}")))?;
    Ok((status, body.to_string()))
}

/// One-shot `POST` with a JSON body, returning `(status_code, body)`.
pub fn http_post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    http_with_body(addr, "POST", path, body)
}

/// One-shot request returning `(status_code, response_headers, body)` —
/// for assertions on headers the simpler helpers discard (e.g. the 429
/// answer's `Retry-After`). Header names are lower-cased.
pub fn http_request_raw(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, BTreeMap<String, String>, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("response without header terminator"))?;
    let mut lines = head.lines();
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line: {head:?}")))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers, body.to_string()))
}

/// The names of currently-firing alerts in a `/alerts` body, with their
/// `session` field rendered as `name@<id>` for per-session alerts (e.g.
/// `watchdog.session_stalled@3`).
pub fn firing_alert_names(alerts_body: &str) -> Vec<String> {
    let Ok(doc) = crate::json::parse(alerts_body) else {
        return Vec::new();
    };
    let Some(firing) = doc.get("firing").and_then(crate::json::Value::as_array) else {
        return Vec::new();
    };
    firing
        .iter()
        .filter_map(|alert| {
            let name = alert.get("name")?.as_str()?;
            Some(
                match alert.get("session").and_then(crate::json::Value::as_f64) {
                    Some(id) => format!("{name}@{}", id as u64),
                    None => name.to_string(),
                },
            )
        })
        .collect()
}

/// One-shot `DELETE`, returning `(status_code, body)`.
pub fn http_delete(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    http_with_body(addr, "DELETE", path, "")
}

fn http_with_body(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("response without header terminator"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line: {head:?}")))?;
    Ok((status, body.to_string()))
}

/// One Server-Sent Event.
#[derive(Debug, Clone, PartialEq)]
pub struct SseEvent {
    /// `event:` field (empty when absent).
    pub event: String,
    /// `id:` field.
    pub id: Option<String>,
    /// Concatenated `data:` lines.
    pub data: String,
}

/// Connects to an SSE endpoint and collects events until `min_events` have
/// arrived or `deadline` elapses (keep-alive comments are skipped). The
/// connection is then dropped, which the server notices on its next write.
pub fn collect_sse(
    addr: &str,
    path: &str,
    min_events: usize,
    deadline: Duration,
) -> std::io::Result<Vec<SseEvent>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    {
        let mut stream = &stream;
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: {addr}\r\nAccept: text/event-stream\r\n\r\n"
        )?;
        stream.flush()?;
    }
    let start = Instant::now();
    let mut reader = BufReader::new(&stream);
    // Skip the response headers.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(Vec::new()),
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
            Err(e) if would_block(&e) => {
                if start.elapsed() > deadline {
                    return Ok(Vec::new());
                }
            }
            Err(e) => return Err(e),
        }
    }
    let mut events = Vec::new();
    let mut current = SseEvent {
        event: String::new(),
        id: None,
        data: String::new(),
    };
    while events.len() < min_events && start.elapsed() <= deadline {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let line = line.trim_end_matches(['\r', '\n']);
                if line.is_empty() {
                    // Dispatch boundary; comment-only blocks carry no data.
                    if !current.data.is_empty() || !current.event.is_empty() {
                        events.push(std::mem::replace(
                            &mut current,
                            SseEvent {
                                event: String::new(),
                                id: None,
                                data: String::new(),
                            },
                        ));
                    }
                } else if let Some(v) = line.strip_prefix("event:") {
                    current.event = v.trim().to_string();
                } else if let Some(v) = line.strip_prefix("id:") {
                    current.id = Some(v.trim().to_string());
                } else if let Some(v) = line.strip_prefix("data:") {
                    if !current.data.is_empty() {
                        current.data.push('\n');
                    }
                    current.data.push_str(v.trim_start());
                }
                // Lines starting with ':' are keep-alive comments — skipped.
            }
            Err(e) if would_block(&e) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(events)
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_samples_types_and_labels() {
        let text = "\
# HELP beamdyn_x_total help text
# TYPE beamdyn_x_total counter
beamdyn_x_total 42
# TYPE beamdyn_h histogram
beamdyn_h_bucket{le=\"1.5\"} 1
beamdyn_h_bucket{le=\"+Inf\"} 3
beamdyn_h_sum 7.5
beamdyn_h_count 3
beamdyn_span_duration_ns_total{path=\"step/deposit\"} 123
beamdyn_g NaN
";
        let exp = parse_exposition(text).expect("valid exposition");
        assert_eq!(
            exp.types.get("beamdyn_x_total").map(String::as_str),
            Some("counter")
        );
        assert_eq!(
            exp.helps.get("beamdyn_x_total").map(String::as_str),
            Some("help text")
        );
        assert_eq!(exp.value("beamdyn_x_total"), Some(42.0));
        assert_eq!(exp.labelled("beamdyn_h_bucket", "le", "+Inf"), Some(3.0));
        assert_eq!(
            exp.labelled("beamdyn_span_duration_ns_total", "path", "step/deposit"),
            Some(123.0)
        );
        assert!(exp.value("beamdyn_g").unwrap().is_nan());
        assert_eq!(exp.family("beamdyn_h_bucket").len(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_exposition("9bad_name 1").is_err());
        assert!(parse_exposition("name").is_err());
        assert!(parse_exposition("name{le=\"unterminated} 1").is_err());
        assert!(
            parse_exposition("name{le=1.5} 1").is_err(),
            "unquoted label"
        );
        assert!(parse_exposition("name one").is_err());
        assert!(parse_exposition("name 1 2 3").is_err());
    }

    #[test]
    fn label_escapes_round_trip() {
        let exp = parse_exposition("m{path=\"a\\\"b\\\\c\\nd\"} 1").expect("valid");
        assert_eq!(exp.samples[0].label("path"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn obs_render_round_trips_through_the_parser() {
        use beamdyn_obs::prometheus;
        // Build a synthetic registry snapshot through the public API of the
        // render side: the live registry of this test process.
        static SCRAPE_TEST: beamdyn_obs::Counter = beamdyn_obs::Counter::new("scrape.test_total_x");
        SCRAPE_TEST.add(9);
        let text = prometheus::render_current();
        let exp = parse_exposition(&text).expect("render output must parse");
        assert_eq!(exp.value("beamdyn_scrape_test_total_x_total"), Some(9.0));
    }

    /// Pins the exposition contract: every family `obs::prometheus` renders
    /// carries both a `# HELP` and a `# TYPE` header, and both survive the
    /// round trip through this parser.
    #[test]
    fn every_rendered_family_has_help_and_type() {
        use beamdyn_obs::prometheus;
        static HELP_C: beamdyn_obs::Counter = beamdyn_obs::Counter::new("scrape.help_counter");
        static HELP_G: beamdyn_obs::Gauge = beamdyn_obs::Gauge::new("scrape.help_gauge");
        static HELP_H: beamdyn_obs::Histogram =
            beamdyn_obs::Histogram::new("scrape.help_histogram");
        HELP_C.add(3);
        HELP_G.set(1.5);
        HELP_H.record(2.0);
        let text = prometheus::render_current();
        let exp = parse_exposition(&text).expect("render output must parse");

        for (family, kind, help) in [
            (
                "beamdyn_scrape_help_counter_total",
                "counter",
                "Monotonic counter `scrape.help_counter`.",
            ),
            (
                "beamdyn_scrape_help_gauge",
                "gauge",
                "Latest observation of gauge `scrape.help_gauge`.",
            ),
            (
                "beamdyn_scrape_help_histogram",
                "histogram",
                "Log-bucketed distribution `scrape.help_histogram`.",
            ),
        ] {
            assert_eq!(
                exp.types.get(family).map(String::as_str),
                Some(kind),
                "family {family} must declare # TYPE {kind}"
            );
            assert_eq!(
                exp.helps.get(family).map(String::as_str),
                Some(help),
                "family {family} must declare # HELP"
            );
        }
        // The contract is exposition-wide, not just for the families this
        // test planted: no TYPE'd family may ship without HELP text.
        for family in exp.types.keys() {
            assert!(
                exp.helps.contains_key(family),
                "family {family} has # TYPE but no # HELP"
            );
        }
    }
}
