//! Shared harness pieces for the paper-reproduction benchmark binaries.
//!
//! One binary exists per table/figure of the paper's evaluation section
//! (see `DESIGN.md` §5); each accepts `--scale small|paper` where `small`
//! finishes in seconds and `paper` runs the full-resolution sweep.

pub mod json;
pub mod regression;
pub mod scrape;

use beamdyn_beam::{Beam, GaussianBunch, RpConfig};
use beamdyn_core::{KernelKind, Simulation, SimulationConfig, StepTelemetry};
use beamdyn_par::ThreadPool;
use beamdyn_pic::GridGeometry;
use beamdyn_simt::{DeviceConfig, SimTime};

/// Harness scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: small grids, few particles, seconds per binary.
    Small,
    /// Paper-sized sweep (minutes; grids up to 256²).
    Paper,
}

impl Scale {
    /// Parses `--scale small|paper` from argv (default: small).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        for pair in args.windows(2) {
            if pair[0] == "--scale" && pair[1] == "paper" {
                return Self::Paper;
            }
        }
        if args.iter().any(|a| a == "--paper") {
            return Self::Paper;
        }
        Self::Small
    }
}

/// The standard experiment workload: an elongated (LCLS-like) bunch crossing
/// the grid, so collective-effect access patterns evolve step over step —
/// the situation the paper's forecasting targets.
pub struct Workload {
    /// Simulation configuration (kernel field set per run).
    pub config: SimulationConfig,
    /// Initial macro-particle beam.
    pub beam: Beam,
}

/// Builds the standard workload at a given grid resolution / particle count.
pub fn standard_workload(resolution: usize, particles: usize, kernel: KernelKind) -> Workload {
    let geometry = GridGeometry::unit(resolution, resolution);
    let kappa = 12;
    let mut config = SimulationConfig::standard(geometry, kernel);
    config.rp = RpConfig {
        kappa,
        dt: 0.35 / kappa as f64,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.42,
        support_y: 0.09,
        center: (0.3, 0.5),
    };
    config.tolerance = 1e-6;
    let bunch = GaussianBunch {
        sigma_x: 0.12,
        sigma_y: 0.025,
        center_x: 0.3,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.4,
        chirp: 0.0,
    };
    Workload {
        config,
        beam: bunch.sample(particles.max(1), 0xBEA0),
    }
}

/// A rigid centred workload for the validation experiments (Fig 2 / Fig 3).
pub fn validation_workload(resolution: usize, particles: usize) -> Workload {
    validation_workload_seeded(resolution, particles, 0xF16)
}

/// [`validation_workload`] with an explicit sampling seed (independent
/// Monte-Carlo draws for MSE sweeps).
pub fn validation_workload_seeded(resolution: usize, particles: usize, seed: u64) -> Workload {
    let mut w = standard_workload(resolution, particles, KernelKind::Predictive);
    w.config.rigid = true;
    w.config.rp.center = (0.5, 0.5);
    let bunch = GaussianBunch {
        sigma_x: 0.1,
        sigma_y: 0.04,
        center_x: 0.5,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.05,
        chirp: 0.0,
    };
    w.beam = bunch.sample(particles.max(1), seed);
    w
}

/// The rigid bunch matching [`validation_workload`], for analytic reference.
pub fn validation_bunch() -> GaussianBunch {
    GaussianBunch {
        sigma_x: 0.1,
        sigma_y: 0.04,
        center_x: 0.5,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.05,
        chirp: 0.0,
    }
}

/// Runs `steps` simulation steps and returns all telemetry.
pub fn run_steps(pool: &ThreadPool, workload: Workload, steps: usize) -> Vec<StepTelemetry> {
    let device = DeviceConfig::tesla_k40();
    let mut sim = Simulation::new(pool, &device, workload.config, workload.beam);
    sim.run(steps)
}

/// Averages the warm steps (skipping the first `warmup`) of a telemetry run.
pub struct WarmSummary {
    /// Mean simulated GPU time per step.
    pub gpu_time: SimTime,
    /// Mean host clustering time per step, seconds.
    pub clustering_time: f64,
    /// Mean host training time per step, seconds.
    pub training_time: f64,
    /// Mean stage-overall time (GPU + clustering + training).
    pub overall_time: SimTime,
    /// Mean fallback cell count.
    pub fallback_cells: f64,
    /// Merged machine counters of the warm steps.
    pub stats: beamdyn_simt::KernelStats,
}

/// Builds a [`WarmSummary`] from telemetry.
pub fn summarize(telemetry: &[StepTelemetry], warmup: usize) -> WarmSummary {
    let warm: Vec<&StepTelemetry> = telemetry.iter().skip(warmup).collect();
    assert!(!warm.is_empty(), "need at least one warm step");
    let n = warm.len() as f64;
    let mut stats = beamdyn_simt::KernelStats::default();
    for t in &warm {
        stats.merge(&t.potentials.combined_stats());
    }
    let mean_sim = |total: SimTime| SimTime::from_secs(total.seconds() / n);
    WarmSummary {
        gpu_time: mean_sim(warm.iter().map(|t| t.potentials.gpu_time).sum()),
        clustering_time: warm
            .iter()
            .map(|t| t.potentials.clustering_time.as_secs_f64())
            .sum::<f64>()
            / n,
        training_time: warm
            .iter()
            .map(|t| t.potentials.training_time.as_secs_f64())
            .sum::<f64>()
            / n,
        overall_time: mean_sim(warm.iter().map(|t| t.stage_overall_time()).sum()),
        fallback_cells: warm
            .iter()
            .map(|t| t.potentials.fallback_cells as f64)
            .sum::<f64>()
            / n,
        stats,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The artifact output directory: `$BEAMDYN_BENCH_DIR` (default: current
/// directory), created on demand. The resolution lives in
/// [`beamdyn_obs::artifact_dir`] so the health engine's post-mortem dumps
/// land in the same place as bench tables and baselines.
pub fn artifact_dir() -> std::io::Result<std::path::PathBuf> {
    let path = beamdyn_obs::artifact_dir();
    std::fs::create_dir_all(&path)?;
    Ok(path)
}

/// Writes `contents` to `$BEAMDYN_BENCH_DIR/<file_name>` (creating the
/// directory — including missing parents — if needed) and returns the path
/// actually written.
pub fn write_artifact(file_name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let path = artifact_dir()?.join(file_name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Writes a table as a machine-readable JSONL artifact next to the stdout
/// rendering: one object per row keyed by the header, then one trailing
/// `{"type":"obs",...}` object carrying the observability registry
/// (span totals in ns, counters, gauges, histogram summaries) accumulated
/// over the run.
///
/// The file lands at `$BEAMDYN_BENCH_DIR/BENCH_<name>.jsonl` (default:
/// current directory), so `table1_kernel_metrics` produces
/// `BENCH_table1_kernel_metrics.jsonl` and so on.
pub fn write_jsonl_artifact(
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    use std::io::Write;
    let path = artifact_dir()?.join(format!("BENCH_{name}.jsonl"));
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    for row in rows {
        let fields: Vec<String> = header
            .iter()
            .zip(row)
            .map(|(h, v)| format!("\"{}\":\"{}\"", json_escape(h), json_escape(v)))
            .collect();
        writeln!(
            file,
            "{{\"table\":\"{}\",{}}}",
            json_escape(name),
            fields.join(",")
        )?;
    }
    let snap = beamdyn_obs::snapshot();
    let spans: Vec<String> = snap
        .spans
        .iter()
        .map(|(p, s)| format!("\"{}\":{}", json_escape(p), s.total_ns))
        .collect();
    let counters: Vec<String> = snap
        .counters
        .iter()
        .map(|c| format!("\"{}\":{}", json_escape(c.name), c.value))
        .collect();
    let gauges: Vec<String> = snap
        .gauges
        .iter()
        .map(|(n, v)| {
            format!(
                "\"{}\":{}",
                json_escape(n),
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".into()
                }
            )
        })
        .collect();
    let histograms: Vec<String> = snap
        .histograms
        .iter()
        .map(|(n, h)| format!("\"{}\":{}", json_escape(n), h.summary_json()))
        .collect();
    writeln!(
        file,
        "{{\"type\":\"obs\",\"span_total_ns\":{{{}}},\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        spans.join(","),
        counters.join(","),
        gauges.join(","),
        histograms.join(",")
    )?;
    file.flush()?;
    Ok(path)
}

/// [`print_table`] + [`write_jsonl_artifact`] in one call — the standard
/// ending of every bench binary. IO failures are reported, not fatal.
pub fn emit_table(name: &str, title: &str, header: &[&str], rows: &[Vec<String>]) {
    print_table(title, header, rows);
    match write_jsonl_artifact(name, header, rows) {
        Ok(path) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("[artifact] write failed: {e}"),
    }
}

/// Prints a plain-text table: header row, separator, then rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (w, c) in widths.iter().zip(cells) {
            out.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", out.trim_end());
    };
    line(header.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// `name` of each kernel for report rows.
pub fn kernel_name(kernel: KernelKind) -> &'static str {
    match kernel {
        KernelKind::TwoPhase => "Two-Phase-RP",
        KernelKind::Heuristic => "Heuristic-RP",
        KernelKind::Predictive => "Predictive-RP",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_runs_and_summarizes() {
        let pool = ThreadPool::new(2);
        let w = standard_workload(12, 2000, KernelKind::Heuristic);
        let telemetry = run_steps(&pool, w, 3);
        let s = summarize(&telemetry, 1);
        assert!(s.gpu_time.seconds() > 0.0);
        assert!(s.overall_time >= s.gpu_time);
    }

    #[test]
    fn scale_parses_default_small() {
        assert_eq!(Scale::from_args(), Scale::Small);
    }
}
