//! Gather interpolation: bilinear force gather and the 27-point space-time
//! stencil used to approximate the rp-integrand `f⁽ᵖ⁾(r', θ', t')`.

use crate::grid::MomentGrid;
use crate::history::GridHistory;

/// Bilinear (CIC-conjugate) gather of one moment component at a physical
/// point. Points outside the rectangle are clamped to the border.
pub fn bilinear_gather(grid: &MomentGrid, component: usize, x: f64, y: f64) -> f64 {
    let geometry = grid.geometry();
    let (fx, fy) = geometry.fractional(x, y);
    let ix0 = (fx.floor() as isize).clamp(0, geometry.nx as isize - 2);
    let iy0 = (fy.floor() as isize).clamp(0, geometry.ny as isize - 2);
    let tx = (fx - ix0 as f64).clamp(0.0, 1.0);
    let ty = (fy - iy0 as f64).clamp(0.0, 1.0);
    let v00 = grid.get_clamped(component, ix0, iy0);
    let v10 = grid.get_clamped(component, ix0 + 1, iy0);
    let v01 = grid.get_clamped(component, ix0, iy0 + 1);
    let v11 = grid.get_clamped(component, ix0 + 1, iy0 + 1);
    (1.0 - tx) * (1.0 - ty) * v00 + tx * (1.0 - ty) * v10 + (1.0 - tx) * ty * v01 + tx * ty * v11
}

/// One tap of the 27-point stencil: a grid cell at a relative time level with
/// its interpolation weight.
#[derive(Debug, Clone, Copy)]
pub struct StencilTap {
    /// Cell x index.
    pub ix: usize,
    /// Cell y index.
    pub iy: usize,
    /// Time level relative to the stencil's centre step `i` (−1, 0, or +1).
    pub dt: i32,
    /// Tensor-product Lagrange weight.
    pub weight: f64,
}

/// The paper's 27-neighbour approximation of the integrand: a 3×3 patch of
/// quadratic B-spline (triangular-shaped-cloud) weights in space, replicated
/// on three consecutive moment grids `D_{i−1}, D_i, D_{i+1}` with quadratic
/// Lagrange interpolation in retarded time.
///
/// The spatial weights are B-splines rather than snapped Lagrange because
/// the interpolant must be *continuous* in the evaluation point: a snapped
/// Lagrange patch jumps when the nearest cell centre changes, and adaptive
/// quadrature cannot converge across a jump (its error and its tolerance
/// budget both shrink linearly with cell width). TSC is C¹, reproduces
/// linear fields exactly, and is the standard higher-order PIC kernel.
#[derive(Debug, Clone)]
pub struct Stencil27 {
    taps: [StencilTap; 27],
}

/// Quadratic Lagrange weights on nodes {−1, 0, +1} evaluated at `u` — used
/// on the time axis, where the evaluation parameter runs node-to-node and
/// the interpolant stays continuous.
#[inline]
fn lagrange3(u: f64) -> [f64; 3] {
    [0.5 * u * (u - 1.0), 1.0 - u * u, 0.5 * u * (u + 1.0)]
}

/// Quadratic B-spline (TSC) weights for offset `u ∈ [−0.5, 0.5]` from the
/// nearest node: `[(0.5−u)²/2, 0.75−u², (0.5+u)²/2]`.
#[inline]
fn bspline3(u: f64) -> [f64; 3] {
    [
        0.5 * (0.5 - u) * (0.5 - u),
        0.75 - u * u,
        0.5 * (0.5 + u) * (0.5 + u),
    ]
}

impl Stencil27 {
    /// Builds the stencil for physical point `(x, y)` and time fraction
    /// `s ∈ [0, 1]` between centre step `i` (s = 0) and step `i + 1` (s = 1).
    ///
    /// Near grid edges the 3×3 patch is shifted inward, so the weights become
    /// mildly extrapolatory there — the standard structured-grid treatment.
    pub fn new(grid: &MomentGrid, x: f64, y: f64, s: f64) -> Self {
        let geometry = grid.geometry();
        assert!(
            geometry.nx >= 3 && geometry.ny >= 3,
            "stencil needs a 3x3 patch"
        );
        let (fx, fy) = geometry.fractional(x, y);
        // Nearest cell centre, kept one cell away from the border.
        let cx = (fx.round() as isize).clamp(1, geometry.nx as isize - 2);
        let cy = (fy.round() as isize).clamp(1, geometry.ny as isize - 2);
        let ux = fx - cx as f64;
        let uy = fy - cy as f64;
        let wx = bspline3(ux);
        let wy = bspline3(uy);
        // Map s∈[0,1] onto the {−1,0,+1} node coordinate of the centre step.
        let wt = lagrange3(s.clamp(0.0, 1.0));

        let mut taps = [StencilTap {
            ix: 0,
            iy: 0,
            dt: 0,
            weight: 0.0,
        }; 27];
        let mut n = 0;
        for (ti, &wti) in wt.iter().enumerate() {
            for (yi, &wyi) in wy.iter().enumerate() {
                for (xi, &wxi) in wx.iter().enumerate() {
                    taps[n] = StencilTap {
                        ix: (cx + xi as isize - 1) as usize,
                        iy: (cy + yi as isize - 1) as usize,
                        dt: ti as i32 - 1,
                        weight: wti * wyi * wxi,
                    };
                    n += 1;
                }
            }
        }
        Self { taps }
    }

    /// The 27 taps, time-major then row-major.
    pub fn taps(&self) -> &[StencilTap; 27] {
        &self.taps
    }

    /// Applies the stencil to one moment component around centre step `i`,
    /// reading `D_{i−1}, D_i, D_{i+1}` from `history` (clamped at start-up).
    pub fn apply(&self, history: &GridHistory, center_step: usize, component: usize) -> f64 {
        let mut acc = 0.0;
        for tap in &self.taps {
            let step = center_step.saturating_add_signed(tap.dt as isize);
            if let Some(grid) = history.get_clamped(step) {
                acc += tap.weight * grid.get(component, tap.ix, tap.iy);
            }
        }
        acc
    }

    /// Sum of all weights; exactly 1 away from edges (partition of unity).
    pub fn weight_sum(&self) -> f64 {
        self.taps.iter().map(|t| t.weight).sum()
    }
}

/// The 27-point stencil in *resolved window* form: the factored weights and
/// the patch origin, without materialising 27 tap records.
///
/// [`Stencil27`] spells the stencil out tap by tap, which is what the trace
/// layer wants; the hot numerical path only needs the three weight triples
/// and the patch corner, and gathers values directly from pre-resolved grid
/// references ([`StencilWindow::gather`]) — same math, same accumulation
/// order, no per-sample tap array. `tests` pin the two bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct StencilWindow {
    /// Leftmost cell of the 3×3 patch (`cx − 1`; `cx` is clamped to
    /// `[1, nx − 2]`, so the patch never leaves the grid).
    pub x0: usize,
    /// Bottom cell of the 3×3 patch (`cy − 1`).
    pub y0: usize,
    /// B-spline weights along x.
    pub wx: [f64; 3],
    /// B-spline weights along y.
    pub wy: [f64; 3],
    /// Lagrange weights along retarded time (levels `i−1, i, i+1`).
    pub wt: [f64; 3],
}

impl StencilWindow {
    /// Builds the factored stencil for physical point `(x, y)` and time
    /// fraction `s` — the same geometry and weight math as
    /// [`Stencil27::new`], minus the tap array.
    pub fn new(geometry: crate::grid::GridGeometry, x: f64, y: f64, s: f64) -> Self {
        assert!(
            geometry.nx >= 3 && geometry.ny >= 3,
            "stencil needs a 3x3 patch"
        );
        let (fx, fy) = geometry.fractional(x, y);
        let cx = (fx.round() as isize).clamp(1, geometry.nx as isize - 2);
        let cy = (fy.round() as isize).clamp(1, geometry.ny as isize - 2);
        let ux = fx - cx as f64;
        let uy = fy - cy as f64;
        Self {
            x0: (cx - 1) as usize,
            y0: (cy - 1) as usize,
            wx: bspline3(ux),
            wy: bspline3(uy),
            wt: lagrange3(s.clamp(0.0, 1.0)),
        }
    }

    /// Gathers one moment component through the stencil from the resolved
    /// time window `levels = [D_{i−1}, D_i, D_{i+1}]` (a `None` level —
    /// possible only at the `r = 0` edge where `i + 1` is the future —
    /// contributes nothing, exactly as a per-tap missed lookup used to).
    ///
    /// The accumulation runs time-major then row-major over a single running
    /// sum with the weight product associated `(wt · wy) · wx`, matching
    /// [`Stencil27`]'s tap order and weight construction bit for bit.
    #[inline]
    pub fn gather(&self, levels: &[Option<&MomentGrid>; 3], component: usize) -> f64 {
        let mut acc = 0.0;
        for (ti, level) in levels.iter().enumerate() {
            let Some(grid) = level else { continue };
            let wti = self.wt[ti];
            for (yi, &wyi) in self.wy.iter().enumerate() {
                let wty = wti * wyi;
                let row = &grid.component_row(component, self.y0 + yi)[self.x0..self.x0 + 3];
                for (wxi, value) in self.wx.iter().zip(row) {
                    acc += (wty * wxi) * value;
                }
            }
        }
        acc
    }

    /// Number of present levels in a resolved window (for flop accounting
    /// that matches the adds [`StencilWindow::gather`] actually performs).
    #[inline]
    pub fn present_levels(levels: &[Option<&MomentGrid>; 3]) -> u32 {
        levels.iter().filter(|l| l.is_some()).count() as u32
    }
}

/// Amortized [`StencilWindow`] construction for evaluations that resolve
/// many windows against the same geometry and retarded-time fraction: the
/// cell sizes (two divisions inside `fractional`) and the Lagrange time
/// weights are computed once here instead of once per sample.
///
/// Bit-compatible with [`StencilWindow::new`]: the hoisted `dx`/`dy`/`wt`
/// are the exact f64 values the per-sample path recomputes, and
/// [`StencilResolver::window`] performs the remaining ops in the same
/// order, so the produced windows are identical bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct StencilResolver {
    geometry: crate::grid::GridGeometry,
    dx: f64,
    dy: f64,
    wt: [f64; 3],
}

impl StencilResolver {
    /// Hoists the per-call constants for time fraction `s`.
    pub fn new(geometry: crate::grid::GridGeometry, s: f64) -> Self {
        assert!(
            geometry.nx >= 3 && geometry.ny >= 3,
            "stencil needs a 3x3 patch"
        );
        Self {
            geometry,
            dx: geometry.dx(),
            dy: geometry.dy(),
            wt: lagrange3(s.clamp(0.0, 1.0)),
        }
    }

    /// Resolves the window at `(x, y)` — [`StencilWindow::new`] minus the
    /// redundant per-sample division/weight setup.
    #[inline]
    pub fn window(&self, x: f64, y: f64) -> StencilWindow {
        let g = self.geometry;
        let fx = (x - g.x_min) / self.dx - 0.5;
        let fy = (y - g.y_min) / self.dy - 0.5;
        let cx = (fx.round() as isize).clamp(1, g.nx as isize - 2);
        let cy = (fy.round() as isize).clamp(1, g.ny as isize - 2);
        StencilWindow {
            x0: (cx - 1) as usize,
            y0: (cy - 1) as usize,
            wx: bspline3(fx - cx as f64),
            wy: bspline3(fy - cy as f64),
            wt: self.wt,
        }
    }
}
