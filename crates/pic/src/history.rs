//! Ring buffer of moment grids over simulation time steps.

use crate::grid::{GridGeometry, MomentGrid};

/// Stores the last `capacity` moment grids `D_k`, addressed by absolute time
/// step, mirroring the paper's device-resident list `D`.
///
/// The `rp-integral` at step `k` needs grids `D_{k-κ} … D_k` (Sec. II-A), so
/// `capacity` should be at least `κ + 2` — two extra levels because subregion
/// `S_i` touches `D_{k-i-1}, D_{k-i}, D_{k-i+1}` (equivalently the paper's
/// `D_{k-j-1..k-j-3}` indexing from the other end).
#[derive(Debug, Clone)]
pub struct GridHistory {
    geometry: GridGeometry,
    capacity: usize,
    /// `slots[step % capacity]` holds the grid for `step`, if still retained.
    slots: Vec<Option<MomentGrid>>,
    /// Absolute step of the newest stored grid, if any.
    newest: Option<usize>,
}

impl GridHistory {
    /// Creates an empty history retaining up to `capacity` steps.
    pub fn new(geometry: GridGeometry, capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        Self {
            geometry,
            capacity,
            slots: (0..capacity).map(|_| None).collect(),
            newest: None,
        }
    }

    /// Geometry shared by every stored grid.
    pub fn geometry(&self) -> GridGeometry {
        self.geometry
    }

    /// Maximum number of retained steps.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Absolute step of the newest stored grid.
    pub fn newest_step(&self) -> Option<usize> {
        self.newest
    }

    /// Oldest step still retained.
    pub fn oldest_step(&self) -> Option<usize> {
        let newest = self.newest?;
        Some(newest.saturating_sub(self.capacity - 1))
    }

    /// Pushes the grid for `step`. Steps must be pushed in increasing order;
    /// pushing step `s` evicts anything older than `s - capacity + 1`.
    ///
    /// Returns the grid this push evicted, if any, so a steady-state step
    /// loop can [`MomentGrid::reset`] and reuse its storage for the next
    /// deposition instead of allocating a fresh grid every step.
    ///
    /// # Panics
    /// Panics on geometry mismatch or non-monotonic step numbers.
    pub fn push(&mut self, step: usize, grid: MomentGrid) -> Option<MomentGrid> {
        assert_eq!(grid.geometry(), self.geometry, "grid geometry mismatch");
        if let Some(newest) = self.newest {
            assert!(step > newest, "steps must be pushed in increasing order");
            // Invalidate skipped slots so stale grids can't alias new steps.
            for missing in (newest + 1)..step {
                self.slots[missing % self.capacity] = None;
            }
        }
        let evicted = self.slots[step % self.capacity].replace(grid);
        self.newest = Some(step);
        evicted
    }

    /// Returns the grid for an absolute `step`, if still retained.
    pub fn get(&self, step: usize) -> Option<&MomentGrid> {
        let newest = self.newest?;
        if step > newest || newest - step >= self.capacity {
            return None;
        }
        self.slots[step % self.capacity].as_ref()
    }

    /// Like [`GridHistory::get`] but clamps to the oldest retained grid, the
    /// standard treatment for the start-up steps where `k < κ`.
    pub fn get_clamped(&self, step: usize) -> Option<&MomentGrid> {
        self.get(step).or_else(|| {
            let oldest = self.oldest_step()?;
            if step < oldest {
                // The oldest slot may itself be missing if steps were skipped.
                (oldest..=self.newest?).find_map(|s| self.get(s))
            } else {
                None
            }
        })
    }

    /// Number of grids currently retained.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when no grids are stored.
    pub fn is_empty(&self) -> bool {
        self.newest.is_none()
    }
}
