//! Particle-in-cell substrate: structured 2-D grids of *moments*, charge/
//! current deposition, gather interpolation, and the 27-point space-time
//! stencil used by the retarded-potential integrand.
//!
//! Terminology follows the paper (Sec. II-A): at every time step `k` the
//! particle distribution is deposited onto an `N_X × N_Y` grid yielding a
//! multi-component **moment grid** `D_k` (charge density plus the two current
//! densities). The history of these grids is what the `rp-integral` reads.

mod deposit;
mod grid;
mod history;
mod interp;
mod soa;

pub use deposit::{deposit_cic, deposit_cic_simd, refill_samples, DepositSample};
pub use grid::{GridGeometry, MomentGrid, MOMENT_CHARGE, MOMENT_JX, MOMENT_JY, N_MOMENTS};
pub use history::GridHistory;
pub use interp::{bilinear_gather, Stencil27, StencilResolver, StencilTap, StencilWindow};
pub use soa::ParticleSoA;

#[cfg(test)]
mod tests;
