use beamdyn_par::ThreadPool;

use crate::{
    bilinear_gather, deposit_cic, DepositSample, GridGeometry, GridHistory, MomentGrid, Stencil27,
    MOMENT_CHARGE, MOMENT_JX, MOMENT_JY,
};

fn pool() -> ThreadPool {
    ThreadPool::new(2)
}

#[test]
fn geometry_cell_centers_and_fractional_roundtrip() {
    let g = GridGeometry::unit(8, 4);
    let (x, y) = g.cell_center(3, 2);
    let (fx, fy) = g.fractional(x, y);
    assert!((fx - 3.0).abs() < 1e-12);
    assert!((fy - 2.0).abs() < 1e-12);
}

#[test]
fn geometry_centered_covers_symmetric_rectangle() {
    let g = GridGeometry::centered(16, 16, 2.0, 0.5);
    assert_eq!(g.x_min, -2.0);
    assert_eq!(g.x_max, 2.0);
    assert!(g.contains(0.0, 0.0));
    assert!(!g.contains(2.1, 0.0));
    assert!((g.dx() - 0.25).abs() < 1e-12);
}

#[test]
fn moment_grid_planar_layout_matches_index() {
    let g = GridGeometry::unit(4, 3);
    let mut m = MomentGrid::zeros(g);
    m.set(MOMENT_JX, 2, 1, 7.5);
    let flat = m.as_slice();
    // component 1 (J_x), row 1, column 2 of the planar layout
    assert_eq!(flat[12 + 4 + 2], 7.5);
    assert_eq!(m.get(MOMENT_JX, 2, 1), 7.5);
    assert_eq!(m.component(MOMENT_JX)[6], 7.5);
}

#[test]
fn deposit_conserves_charge_and_currents() {
    let pool = pool();
    let g = GridGeometry::unit(16, 16);
    let mut grid = MomentGrid::zeros(g);
    let samples: Vec<DepositSample> = (0..500)
        .map(|i| {
            let t = i as f64 / 500.0;
            DepositSample {
                x: 0.05 + 0.9 * t,
                y: 0.05 + 0.9 * (1.0 - t),
                weight: 2.0,
                vx: 0.5,
                vy: -0.25,
            }
        })
        .collect();
    let dropped = deposit_cic(&pool, &mut grid, &samples);
    assert_eq!(dropped, 0);
    // Densities: multiply by cell area to recover deposited charge.
    let area = g.dx() * g.dy();
    let q = grid.component_total(MOMENT_CHARGE) * area;
    assert!((q - 1000.0).abs() < 1e-9, "total charge {q}");
    assert!((grid.component_total(MOMENT_JX) * area - 500.0).abs() < 1e-9);
    assert!((grid.component_total(MOMENT_JY) * area + 250.0).abs() < 1e-9);
}

#[test]
fn deposit_drops_out_of_domain_samples() {
    let pool = pool();
    let g = GridGeometry::unit(8, 8);
    let mut grid = MomentGrid::zeros(g);
    let samples = vec![
        DepositSample {
            x: 0.5,
            y: 0.5,
            weight: 1.0,
            vx: 0.0,
            vy: 0.0,
        },
        DepositSample {
            x: 1.5,
            y: 0.5,
            weight: 1.0,
            vx: 0.0,
            vy: 0.0,
        },
        DepositSample {
            x: f64::NAN,
            y: 0.5,
            weight: 1.0,
            vx: 0.0,
            vy: 0.0,
        },
    ];
    let dropped = deposit_cic(&pool, &mut grid, &samples);
    assert_eq!(dropped, 2);
    let area = g.dx() * g.dy();
    assert!((grid.component_total(MOMENT_CHARGE) * area - 1.0).abs() < 1e-12);
}

#[test]
fn deposit_matches_sequential_reference() {
    // Parallel deposition must equal the one-thread result exactly cell-wise
    // up to floating accumulation order within a cell (same chunk split ⇒
    // compare against a 0-thread pool which is fully sequential).
    let par = ThreadPool::new(4);
    let seq = ThreadPool::new(0);
    let g = GridGeometry::unit(32, 32);
    let samples: Vec<DepositSample> = (0..2000)
        .map(|i| {
            let a = (i as f64) * 0.61803398875 % 1.0;
            let b = (i as f64) * 0.41421356237 % 1.0;
            DepositSample {
                x: a,
                y: b,
                weight: 1.0,
                vx: a,
                vy: b,
            }
        })
        .collect();
    let mut grid_a = MomentGrid::zeros(g);
    let mut grid_b = MomentGrid::zeros(g);
    deposit_cic(&par, &mut grid_a, &samples);
    deposit_cic(&seq, &mut grid_b, &samples);
    for (a, b) in grid_a.as_slice().iter().zip(grid_b.as_slice()) {
        assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }
}

#[test]
fn bilinear_gather_reproduces_linear_field_exactly() {
    let g = GridGeometry::unit(16, 16);
    let mut grid = MomentGrid::zeros(g);
    for iy in 0..16 {
        for ix in 0..16 {
            let (x, y) = g.cell_center(ix, iy);
            grid.set(MOMENT_CHARGE, ix, iy, 3.0 * x - 2.0 * y + 1.0);
        }
    }
    for &(x, y) in &[(0.31, 0.62), (0.5, 0.5), (0.91, 0.13)] {
        let v = bilinear_gather(&grid, MOMENT_CHARGE, x, y);
        assert!(
            (v - (3.0 * x - 2.0 * y + 1.0)).abs() < 1e-10,
            "at ({x},{y})"
        );
    }
}

#[test]
fn stencil_weights_form_partition_of_unity() {
    let g = GridGeometry::unit(16, 16);
    let grid = MomentGrid::zeros(g);
    for &s in &[0.0, 0.25, 0.5, 1.0] {
        for &(x, y) in &[(0.5, 0.5), (0.12, 0.83), (0.99, 0.01)] {
            let st = Stencil27::new(&grid, x, y, s);
            assert!(
                (st.weight_sum() - 1.0).abs() < 1e-12,
                "sum at ({x},{y},{s}) = {}",
                st.weight_sum()
            );
        }
    }
}

#[test]
fn stencil_reproduces_linear_space_quadratic_time_exactly() {
    // TSC spatial weights are exact for linear fields; quadratic Lagrange in
    // time is exact for quadratics.
    let g = GridGeometry::unit(16, 16);
    let field = |x: f64, y: f64, t: f64| 1.0 + 2.0 * x - 0.5 * y + 2.0 * t * t - t;
    let mut history = GridHistory::new(g, 4);
    for step in 0..3 {
        let mut grid = MomentGrid::zeros(g);
        for iy in 0..16 {
            for ix in 0..16 {
                let (x, y) = g.cell_center(ix, iy);
                // Time node coordinate: step 1 is the stencil centre (u = step − 1).
                grid.set(MOMENT_CHARGE, ix, iy, field(x, y, step as f64 - 1.0));
            }
        }
        history.push(step, grid);
    }
    let grid = history.get(1).unwrap();
    for &s in &[0.0, 0.3, 0.7, 1.0] {
        let (x, y) = (0.47, 0.55); // interior point
        let st = Stencil27::new(grid, x, y, s);
        let v = st.apply(&history, 1, MOMENT_CHARGE);
        let want = field(x, y, s);
        assert!((v - want).abs() < 1e-9, "s={s}: got {v}, want {want}");
    }
}

#[test]
fn stencil_is_continuous_across_cell_snap_lines() {
    // The interpolant must not jump where the nearest cell centre changes
    // (half-cell lines): adaptive quadrature cannot converge across jumps.
    let g = GridGeometry::unit(16, 16);
    let mut history = GridHistory::new(g, 2);
    let mut grid = MomentGrid::zeros(g);
    for iy in 0..16 {
        for ix in 0..16 {
            // A deliberately rough field (hash-like) to expose any snapping.
            grid.set(MOMENT_CHARGE, ix, iy, ((ix * 7 + iy * 13) % 5) as f64);
        }
    }
    history.push(0, grid);
    let grid = history.get(0).unwrap();
    // Cell centres at (k + 0.5)/16 → snap lines at multiples of 1/16.
    let snap = 5.0 / 16.0;
    let eps = 1e-9;
    let left = Stencil27::new(grid, snap - eps, 0.4, 0.0).apply(&history, 0, MOMENT_CHARGE);
    let right = Stencil27::new(grid, snap + eps, 0.4, 0.0).apply(&history, 0, MOMENT_CHARGE);
    assert!(
        (left - right).abs() < 1e-6,
        "jump at snap line: {left} vs {right}"
    );
}

#[test]
fn stencil_has_exactly_27_taps_with_valid_indices() {
    let g = GridGeometry::unit(8, 8);
    let grid = MomentGrid::zeros(g);
    let st = Stencil27::new(&grid, 0.01, 0.99, 0.5); // corner → shifted patch
    assert_eq!(st.taps().len(), 27);
    for tap in st.taps() {
        assert!(tap.ix < 8 && tap.iy < 8);
        assert!((-1..=1).contains(&tap.dt));
    }
}

#[test]
fn history_push_get_and_eviction() {
    let g = GridGeometry::unit(4, 4);
    let mut h = GridHistory::new(g, 3);
    assert!(h.is_empty());
    for step in 0..5 {
        let mut grid = MomentGrid::zeros(g);
        grid.set(MOMENT_CHARGE, 0, 0, step as f64);
        h.push(step, grid);
    }
    assert_eq!(h.newest_step(), Some(4));
    assert_eq!(h.oldest_step(), Some(2));
    assert!(h.get(1).is_none(), "evicted");
    assert_eq!(h.get(3).unwrap().get(MOMENT_CHARGE, 0, 0), 3.0);
    assert_eq!(h.len(), 3);
}

#[test]
fn history_clamped_read_falls_back_to_oldest() {
    let g = GridGeometry::unit(4, 4);
    let mut h = GridHistory::new(g, 2);
    for step in 0..4 {
        let mut grid = MomentGrid::zeros(g);
        grid.set(MOMENT_CHARGE, 1, 1, 10.0 + step as f64);
        h.push(step, grid);
    }
    // Steps 0 and 1 are gone; clamped read returns step 2 (the oldest).
    let v = h.get_clamped(0).unwrap().get(MOMENT_CHARGE, 1, 1);
    assert_eq!(v, 12.0);
}

#[test]
#[should_panic(expected = "increasing order")]
fn history_rejects_non_monotonic_steps() {
    let g = GridGeometry::unit(4, 4);
    let mut h = GridHistory::new(g, 3);
    h.push(2, MomentGrid::zeros(g));
    h.push(2, MomentGrid::zeros(g));
}

#[test]
fn history_skipped_steps_do_not_alias() {
    let g = GridGeometry::unit(4, 4);
    let mut h = GridHistory::new(g, 4);
    let mut grid = MomentGrid::zeros(g);
    grid.set(MOMENT_CHARGE, 0, 0, 1.0);
    h.push(0, grid);
    h.push(4, MomentGrid::zeros(g)); // step 0's slot is reused by 4
    assert!(h.get(0).is_none());
    assert!(h.get(3).is_none(), "skipped step must read as missing");
    assert!(h.get(4).is_some());
}
