//! Structure-of-arrays particle scratch for the SIMD host pipeline.
//!
//! The AoS particle layout ([`DepositSample`] / the beam's particle vector)
//! is right for bookkeeping but wrong for data parallelism: every vector
//! lane of a CIC weight or a drift update wants *one* field of *four
//! consecutive particles*, which in AoS form is a strided gather. The
//! `NativeSimd` backend therefore converts to this columnar scratch **once
//! per step** — fill from the beam, run deposit → gather → push over the
//! columns, write positions/velocities back — with every column pooled in
//! the step workspace so the steady-state allocation count is zero.
//!
//! Conversion is a pure copy: round-tripping AoS → SoA → AoS reproduces
//! every particle bit-exactly (pinned by proptest in
//! `tests/determinism.rs`).

use crate::deposit::DepositSample;

/// Particle columns: element `i` of every column describes particle `i`.
#[derive(Debug, Clone, Default)]
pub struct ParticleSoA {
    /// Longitudinal positions.
    pub x: Vec<f64>,
    /// Transverse positions.
    pub y: Vec<f64>,
    /// Longitudinal velocities.
    pub vx: Vec<f64>,
    /// Transverse velocities.
    pub vy: Vec<f64>,
    /// Macro-particle charge weights.
    pub weight: Vec<f64>,
}

impl ParticleSoA {
    /// An empty scratch (no capacity yet; [`ParticleSoA::refill`] grows it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of particles held.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when no particles are held.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Drops the particles but keeps every column's capacity.
    pub fn clear(&mut self) {
        self.x.clear();
        self.y.clear();
        self.vx.clear();
        self.vy.clear();
        self.weight.clear();
    }

    /// Clears and refills the columns from an AoS particle stream, reusing
    /// the existing capacity — the SoA twin of
    /// [`refill_samples`](crate::deposit::refill_samples).
    pub fn refill<I>(&mut self, samples: I)
    where
        I: IntoIterator<Item = DepositSample>,
    {
        self.clear();
        for s in samples {
            self.x.push(s.x);
            self.y.push(s.y);
            self.vx.push(s.vx);
            self.vy.push(s.vy);
            self.weight.push(s.weight);
        }
    }

    /// Reconstructs particle `i` in AoS form (bit-exact round trip).
    #[inline]
    pub fn sample(&self, i: usize) -> DepositSample {
        DepositSample {
            x: self.x[i],
            y: self.y[i],
            weight: self.weight[i],
            vx: self.vx[i],
            vy: self.vy[i],
        }
    }

    /// Heap bytes held across all columns (capacity, not length) — feeds
    /// the workspace's `bytes_resident` accounting.
    pub fn bytes_capacity(&self) -> usize {
        (self.x.capacity()
            + self.y.capacity()
            + self.vx.capacity()
            + self.vy.capacity()
            + self.weight.capacity())
            * std::mem::size_of::<f64>()
    }
}
