//! Cloud-in-cell (CIC) deposition of sampled particles onto a moment grid.

use beamdyn_par::simd::F64x4;
use beamdyn_par::ThreadPool;

use crate::grid::{GridGeometry, MomentGrid, MOMENT_CHARGE, MOMENT_JX, MOMENT_JY};
use crate::soa::ParticleSoA;

/// One macro-particle's contribution to the deposition step.
#[derive(Debug, Clone, Copy)]
pub struct DepositSample {
    /// Longitudinal position.
    pub x: f64,
    /// Transverse position.
    pub y: f64,
    /// Macro-particle charge weight.
    pub weight: f64,
    /// Longitudinal velocity (deposits the `MOMENT_JX` current).
    pub vx: f64,
    /// Transverse velocity (deposits the `MOMENT_JY` current).
    pub vy: f64,
}

/// Clears `buf` and refills it from `samples`, reusing the buffer's existing
/// capacity — the steady-state way to rebuild the per-step sample list from a
/// particle set without a fresh allocation every step.
pub fn refill_samples<I>(buf: &mut Vec<DepositSample>, samples: I)
where
    I: IntoIterator<Item = DepositSample>,
{
    buf.clear();
    buf.extend(samples);
}

/// Deposits `samples` onto `grid` with first-order (bilinear / cloud-in-cell)
/// weighting, in parallel, producing **densities**: each weight is spread
/// over the 2×2 patch and divided by the cell area, so the grid values
/// approximate `ρ(x, y)` (and `J_x`, `J_y`) rather than per-cell charge.
/// Total charge is conserved in the sense `Σ cells · dx·dy = Σ weights`.
///
/// Particles outside the grid rectangle are dropped (counted in the return
/// value), matching the usual PIC convention for escaping particles. Each
/// chunk deposits into a private grid; privates are then accumulated in
/// chunk order. The chunk size is a fixed constant — NOT derived from the
/// pool width — so the floating-point accumulation order, and therefore
/// the result, is bit-identical for every thread count
/// (tests/determinism.rs).
///
/// Returns the number of samples that fell outside the grid.
pub fn deposit_cic(pool: &ThreadPool, grid: &mut MomentGrid, samples: &[DepositSample]) -> usize {
    let geometry = grid.geometry();
    const CHUNK: usize = 4096;
    let chunks: Vec<&[DepositSample]> = samples.chunks(CHUNK).collect();

    let partials: Vec<(MomentGrid, usize)> = pool.parallel_map(&chunks, |part| {
        let mut local = MomentGrid::zeros(geometry);
        let mut dropped = 0usize;
        for s in *part {
            if !deposit_one(&mut local, s) {
                dropped += 1;
            }
        }
        (local, dropped)
    });

    let mut dropped = 0;
    for (partial, d) in &partials {
        grid.accumulate(partial);
        dropped += d;
    }
    dropped
}

/// SIMD twin of [`deposit_cic`] over a structure-of-arrays particle
/// scratch: the CIC weight arithmetic (fractional coordinates, bilinear
/// weights, moment charges) runs over 4-wide lane blocks, then each
/// particle's 2×2 patch is scattered sequentially in particle order.
///
/// **Bit-identical to the scalar path by construction.** Every per-lane
/// operation is the same portable f64 op the scalar [`deposit_cic`]
/// performs, in the same order (the hoisted `dx`/`dy`/`inv_area` are the
/// same values the scalar path recomputes per particle, and no division is
/// replaced by a reciprocal multiply); the scatter and the fixed 4096-chunk
/// accumulation preserve the scalar ordering exactly. Only the *schedule*
/// is vectorized — there are no cross-lane reductions — so the resulting
/// grid matches `deposit_cic` on the same particles bit for bit, at any
/// pool width (tests/determinism.rs pins this).
///
/// Returns the number of particles that fell outside the grid.
pub fn deposit_cic_simd(
    pool: &ThreadPool,
    grid: &mut MomentGrid,
    particles: &ParticleSoA,
) -> usize {
    let geometry = grid.geometry();
    const CHUNK: usize = 4096;
    let n = particles.len();
    let bounds: Vec<(usize, usize)> = (0..n.div_ceil(CHUNK))
        .map(|c| (c * CHUNK, ((c + 1) * CHUNK).min(n)))
        .collect();

    let partials: Vec<(MomentGrid, usize)> = pool.parallel_map(&bounds, |&(start, end)| {
        let mut local = MomentGrid::zeros(geometry);
        let mut dropped = 0usize;
        let mut i = start;
        while i + 4 <= end {
            dropped += deposit_block4(&mut local, particles, i);
            i += 4;
        }
        for j in i..end {
            if !deposit_one(&mut local, &particles.sample(j)) {
                dropped += 1;
            }
        }
        (local, dropped)
    });

    let mut dropped = 0;
    for (partial, d) in &partials {
        grid.accumulate(partial);
        dropped += d;
    }
    dropped
}

/// Deposits particles `i..i + 4` with the weight arithmetic vectorized;
/// returns how many of the four were dropped (outside the grid or
/// non-finite). Per-lane ops mirror [`deposit_one`] exactly.
#[inline]
fn deposit_block4(grid: &mut MomentGrid, p: &ParticleSoA, i: usize) -> usize {
    let g: GridGeometry = grid.geometry();
    let xv = F64x4::load(&p.x, i);
    let yv = F64x4::load(&p.y, i);

    // `fractional` with dx()/dy() hoisted: same dividend, same divisor
    // value, same op — identical bits to the scalar per-particle calls.
    let (dx, dy) = (g.dx(), g.dy());
    let half = F64x4::splat(0.5);
    let fxv = (xv - F64x4::splat(g.x_min)) / F64x4::splat(dx) - half;
    let fyv = (yv - F64x4::splat(g.y_min)) / F64x4::splat(dy) - half;

    // Integer lattice work stays per-lane scalar (floor/clamp/casts).
    let mut ix0 = [0usize; 4];
    let mut iy0 = [0usize; 4];
    let mut valid = [false; 4];
    let (fxa, fya) = (fxv.to_array(), fyv.to_array());
    let (xa, ya) = (xv.to_array(), yv.to_array());
    for l in 0..4 {
        valid[l] = g.contains(xa[l], ya[l]) && xa[l].is_finite() && ya[l].is_finite();
        ix0[l] = (fxa[l].floor() as isize).clamp(0, g.nx as isize - 2) as usize;
        iy0[l] = (fya[l].floor() as isize).clamp(0, g.ny as isize - 2) as usize;
    }

    let txv = (fxv - F64x4::new(ix0[0] as f64, ix0[1] as f64, ix0[2] as f64, ix0[3] as f64))
        .clamp(0.0, 1.0);
    let tyv = (fyv - F64x4::new(iy0[0] as f64, iy0[1] as f64, iy0[2] as f64, iy0[3] as f64))
        .clamp(0.0, 1.0);

    let one = F64x4::splat(1.0);
    let (sxv, syv) = (one - txv, one - tyv);
    let wv = [sxv * syv, txv * syv, sxv * tyv, txv * tyv];

    // q = (weight · wᵢ) · inv_area, then q·vx / q·vy — the scalar op order.
    let inv_area = F64x4::splat(1.0 / (dx * dy));
    let weightv = F64x4::load(&p.weight, i);
    let (vxv, vyv) = (F64x4::load(&p.vx, i), F64x4::load(&p.vy, i));
    let mut q = [[0.0f64; 4]; 4];
    let mut qjx = [[0.0f64; 4]; 4];
    let mut qjy = [[0.0f64; 4]; 4];
    for (c, w) in wv.iter().enumerate() {
        let qv = weightv * *w * inv_area;
        q[c] = qv.to_array();
        qjx[c] = (qv * vxv).to_array();
        qjy[c] = (qv * vyv).to_array();
    }

    // Scatter sequentially in particle order — the accumulation order (and
    // therefore every produced bit) matches the scalar loop. The patch
    // indices are proven in bounds by the clamps above, so the adds go
    // through the raw plane without per-add bounds checks.
    let stride = g.len();
    let nx = g.nx;
    let data = grid.data_mut();
    let mut dropped = 0usize;
    for l in 0..4 {
        if !valid[l] {
            dropped += 1;
            continue;
        }
        let base = iy0[l] * nx + ix0[l];
        for (c, off) in [0, 1, nx, nx + 1].into_iter().enumerate() {
            // SAFETY: ix0 ≤ nx−2 and iy0 ≤ ny−2 (clamped above), so every
            // patch cell index is < nx·ny and each plane offset < 3·nx·ny.
            unsafe {
                *data.get_unchecked_mut(MOMENT_CHARGE * stride + base + off) += q[c][l];
                *data.get_unchecked_mut(MOMENT_JX * stride + base + off) += qjx[c][l];
                *data.get_unchecked_mut(MOMENT_JY * stride + base + off) += qjy[c][l];
            }
        }
    }
    dropped
}

/// Deposits a single sample; returns `false` if it lies outside the grid.
fn deposit_one(grid: &mut MomentGrid, s: &DepositSample) -> bool {
    let geometry = grid.geometry();
    if !geometry.contains(s.x, s.y) || !s.x.is_finite() || !s.y.is_finite() {
        return false;
    }
    let (fx, fy) = geometry.fractional(s.x, s.y);
    // Lower cell of the 2x2 CIC patch, clamped so border particles deposit
    // fully onto the edge cells (weights still sum to 1).
    let ix0 = (fx.floor() as isize).clamp(0, geometry.nx as isize - 2) as usize;
    let iy0 = (fy.floor() as isize).clamp(0, geometry.ny as isize - 2) as usize;
    let tx = (fx - ix0 as f64).clamp(0.0, 1.0);
    let ty = (fy - iy0 as f64).clamp(0.0, 1.0);

    let w = [
        (1.0 - tx) * (1.0 - ty),
        tx * (1.0 - ty),
        (1.0 - tx) * ty,
        tx * ty,
    ];
    let inv_area = 1.0 / (geometry.dx() * geometry.dy());
    let cells = [
        (ix0, iy0),
        (ix0 + 1, iy0),
        (ix0, iy0 + 1),
        (ix0 + 1, iy0 + 1),
    ];
    for (&(ix, iy), &wi) in cells.iter().zip(&w) {
        let q = s.weight * wi * inv_area;
        grid.add(MOMENT_CHARGE, ix, iy, q);
        grid.add(MOMENT_JX, ix, iy, q * s.vx);
        grid.add(MOMENT_JY, ix, iy, q * s.vy);
    }
    true
}
