//! Cloud-in-cell (CIC) deposition of sampled particles onto a moment grid.

use beamdyn_par::ThreadPool;

use crate::grid::{MomentGrid, MOMENT_CHARGE, MOMENT_JX, MOMENT_JY};

/// One macro-particle's contribution to the deposition step.
#[derive(Debug, Clone, Copy)]
pub struct DepositSample {
    /// Longitudinal position.
    pub x: f64,
    /// Transverse position.
    pub y: f64,
    /// Macro-particle charge weight.
    pub weight: f64,
    /// Longitudinal velocity (deposits the `MOMENT_JX` current).
    pub vx: f64,
    /// Transverse velocity (deposits the `MOMENT_JY` current).
    pub vy: f64,
}

/// Clears `buf` and refills it from `samples`, reusing the buffer's existing
/// capacity — the steady-state way to rebuild the per-step sample list from a
/// particle set without a fresh allocation every step.
pub fn refill_samples<I>(buf: &mut Vec<DepositSample>, samples: I)
where
    I: IntoIterator<Item = DepositSample>,
{
    buf.clear();
    buf.extend(samples);
}

/// Deposits `samples` onto `grid` with first-order (bilinear / cloud-in-cell)
/// weighting, in parallel, producing **densities**: each weight is spread
/// over the 2×2 patch and divided by the cell area, so the grid values
/// approximate `ρ(x, y)` (and `J_x`, `J_y`) rather than per-cell charge.
/// Total charge is conserved in the sense `Σ cells · dx·dy = Σ weights`.
///
/// Particles outside the grid rectangle are dropped (counted in the return
/// value), matching the usual PIC convention for escaping particles. Each
/// chunk deposits into a private grid; privates are then accumulated in
/// chunk order. The chunk size is a fixed constant — NOT derived from the
/// pool width — so the floating-point accumulation order, and therefore
/// the result, is bit-identical for every thread count
/// (tests/determinism.rs).
///
/// Returns the number of samples that fell outside the grid.
pub fn deposit_cic(pool: &ThreadPool, grid: &mut MomentGrid, samples: &[DepositSample]) -> usize {
    let geometry = grid.geometry();
    const CHUNK: usize = 4096;
    let chunks: Vec<&[DepositSample]> = samples.chunks(CHUNK).collect();

    let partials: Vec<(MomentGrid, usize)> = pool.parallel_map(&chunks, |part| {
        let mut local = MomentGrid::zeros(geometry);
        let mut dropped = 0usize;
        for s in *part {
            if !deposit_one(&mut local, s) {
                dropped += 1;
            }
        }
        (local, dropped)
    });

    let mut dropped = 0;
    for (partial, d) in &partials {
        grid.accumulate(partial);
        dropped += d;
    }
    dropped
}

/// Deposits a single sample; returns `false` if it lies outside the grid.
fn deposit_one(grid: &mut MomentGrid, s: &DepositSample) -> bool {
    let geometry = grid.geometry();
    if !geometry.contains(s.x, s.y) || !s.x.is_finite() || !s.y.is_finite() {
        return false;
    }
    let (fx, fy) = geometry.fractional(s.x, s.y);
    // Lower cell of the 2x2 CIC patch, clamped so border particles deposit
    // fully onto the edge cells (weights still sum to 1).
    let ix0 = (fx.floor() as isize).clamp(0, geometry.nx as isize - 2) as usize;
    let iy0 = (fy.floor() as isize).clamp(0, geometry.ny as isize - 2) as usize;
    let tx = (fx - ix0 as f64).clamp(0.0, 1.0);
    let ty = (fy - iy0 as f64).clamp(0.0, 1.0);

    let w = [
        (1.0 - tx) * (1.0 - ty),
        tx * (1.0 - ty),
        (1.0 - tx) * ty,
        tx * ty,
    ];
    let inv_area = 1.0 / (geometry.dx() * geometry.dy());
    let cells = [
        (ix0, iy0),
        (ix0 + 1, iy0),
        (ix0, iy0 + 1),
        (ix0 + 1, iy0 + 1),
    ];
    for (&(ix, iy), &wi) in cells.iter().zip(&w) {
        let q = s.weight * wi * inv_area;
        grid.add(MOMENT_CHARGE, ix, iy, q);
        grid.add(MOMENT_JX, ix, iy, q * s.vx);
        grid.add(MOMENT_JY, ix, iy, q * s.vy);
    }
    true
}
