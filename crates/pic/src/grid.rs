//! Moment grids and their geometry.

/// Number of moment components deposited per grid point.
pub const N_MOMENTS: usize = 3;
/// Component index of the deposited charge density.
pub const MOMENT_CHARGE: usize = 0;
/// Component index of the longitudinal current density.
pub const MOMENT_JX: usize = 1;
/// Component index of the transverse current density.
pub const MOMENT_JY: usize = 2;

/// Physical extent and resolution of a 2-D data grid.
///
/// Cell centres sit at `x_min + (i + 0.5) dx`; the grid covers the closed
/// rectangle `[x_min, x_max] × [y_min, y_max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridGeometry {
    /// Number of cells along x (the paper's `N_X`).
    pub nx: usize,
    /// Number of cells along y (the paper's `N_Y`).
    pub ny: usize,
    /// Lower x bound of the covered rectangle.
    pub x_min: f64,
    /// Upper x bound of the covered rectangle.
    pub x_max: f64,
    /// Lower y bound of the covered rectangle.
    pub y_min: f64,
    /// Upper y bound of the covered rectangle.
    pub y_max: f64,
}

impl GridGeometry {
    /// A geometry covering the unit square, handy for tests.
    pub fn unit(nx: usize, ny: usize) -> Self {
        Self {
            nx,
            ny,
            x_min: 0.0,
            x_max: 1.0,
            y_min: 0.0,
            y_max: 1.0,
        }
    }

    /// Geometry centred on the origin with half-widths `hx`, `hy`.
    pub fn centered(nx: usize, ny: usize, hx: f64, hy: f64) -> Self {
        Self {
            nx,
            ny,
            x_min: -hx,
            x_max: hx,
            y_min: -hy,
            y_max: hy,
        }
    }

    /// Cell width along x.
    pub fn dx(&self) -> f64 {
        (self.x_max - self.x_min) / self.nx as f64
    }

    /// Cell width along y.
    pub fn dy(&self) -> f64 {
        (self.y_max - self.y_min) / self.ny as f64
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// True when the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical position of the centre of cell `(ix, iy)`.
    pub fn cell_center(&self, ix: usize, iy: usize) -> (f64, f64) {
        (
            self.x_min + (ix as f64 + 0.5) * self.dx(),
            self.y_min + (iy as f64 + 0.5) * self.dy(),
        )
    }

    /// Continuous (fractional-cell) coordinates of a physical point, where
    /// integer values land on cell centres.
    pub fn fractional(&self, x: f64, y: f64) -> (f64, f64) {
        (
            (x - self.x_min) / self.dx() - 0.5,
            (y - self.y_min) / self.dy() - 0.5,
        )
    }

    /// True when the point lies inside the covered rectangle.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x_min && x <= self.x_max && y >= self.y_min && y <= self.y_max
    }
}

/// One time step's deposited moments: `N_MOMENTS` scalar fields over the grid.
///
/// Components are stored planar (structure-of-arrays): component `c` occupies
/// the contiguous index range `c * nx * ny .. (c + 1) * nx * ny` in row-major
/// (`iy * nx + ix`) order. The SIMT layer maps this layout one-to-one onto
/// simulated device addresses, mirroring the paper's "grids stored linearly
/// on the device memory".
#[derive(Debug, Clone)]
pub struct MomentGrid {
    geometry: GridGeometry,
    data: Vec<f64>,
}

impl MomentGrid {
    /// Creates an all-zero moment grid.
    pub fn zeros(geometry: GridGeometry) -> Self {
        Self {
            geometry,
            data: vec![0.0; geometry.len() * N_MOMENTS],
        }
    }

    /// The grid geometry.
    pub fn geometry(&self) -> GridGeometry {
        self.geometry
    }

    /// Zeroes every moment in place, so an evicted grid can be reused as the
    /// next deposition target without reallocating its storage.
    pub fn reset(&mut self) {
        self.data.fill(0.0);
    }

    /// Flat storage index of `(component, ix, iy)`.
    #[inline]
    pub fn index(&self, component: usize, ix: usize, iy: usize) -> usize {
        debug_assert!(component < N_MOMENTS);
        debug_assert!(ix < self.geometry.nx && iy < self.geometry.ny);
        component * self.geometry.len() + iy * self.geometry.nx + ix
    }

    /// Reads one moment value.
    #[inline]
    pub fn get(&self, component: usize, ix: usize, iy: usize) -> f64 {
        self.data[self.index(component, ix, iy)]
    }

    /// Writes one moment value.
    #[inline]
    pub fn set(&mut self, component: usize, ix: usize, iy: usize, value: f64) {
        let idx = self.index(component, ix, iy);
        self.data[idx] = value;
    }

    /// Adds into one moment value (deposition primitive).
    #[inline]
    pub fn add(&mut self, component: usize, ix: usize, iy: usize, value: f64) {
        let idx = self.index(component, ix, iy);
        self.data[idx] += value;
    }

    /// Clamped read: coordinates outside the grid are clamped to the border,
    /// which is the usual PIC treatment of near-edge stencil taps.
    #[inline]
    pub fn get_clamped(&self, component: usize, ix: isize, iy: isize) -> f64 {
        let ix = ix.clamp(0, self.geometry.nx as isize - 1) as usize;
        let iy = iy.clamp(0, self.geometry.ny as isize - 1) as usize;
        self.get(component, ix, iy)
    }

    /// Raw planar storage (read-only).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Raw planar storage, mutable — the deposition hot path's direct
    /// scatter target (`component · len() + iy · nx + ix` indexing, the
    /// same layout [`MomentGrid::index`] computes).
    #[inline]
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One component as a contiguous row-major slice.
    pub fn component(&self, component: usize) -> &[f64] {
        let n = self.geometry.len();
        &self.data[component * n..(component + 1) * n]
    }

    /// One grid row of one component as a contiguous slice (`ix` ascending).
    ///
    /// The planar row-major layout makes any fixed-`(component, iy)` run of
    /// cells contiguous in memory — the property the 27-tap stencil gather
    /// exploits to read each 3-cell patch row as one slice instead of three
    /// indexed lookups.
    #[inline]
    pub fn component_row(&self, component: usize, iy: usize) -> &[f64] {
        debug_assert!(component < N_MOMENTS && iy < self.geometry.ny);
        let nx = self.geometry.nx;
        let start = component * self.geometry.len() + iy * nx;
        &self.data[start..start + nx]
    }

    /// Sum of one component over all cells (e.g. total deposited charge).
    pub fn component_total(&self, component: usize) -> f64 {
        self.component(component).iter().sum()
    }

    /// Accumulates `other` into `self`; geometries must match.
    pub fn accumulate(&mut self, other: &MomentGrid) {
        assert_eq!(self.geometry, other.geometry, "grid geometry mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }
}
