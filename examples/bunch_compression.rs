//! Bunch compression: a chirped bunch shortens step over step, so the
//! collective-effect workload *sharpens continuously* — the dynamic regime
//! where one-step-ahead forecasting genuinely leads persistence. Prints the
//! per-step telemetry table and the evolving rms bunch length, plus the
//! convolved CSR wake of the final (compressed) line density.
//!
//! ```bash
//! cargo run --release --example bunch_compression
//! ```

use beamdyn::beam::csr::longitudinal_wake_of;
use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::report::render;
use beamdyn::core::{KernelKind, Simulation, SimulationConfig};
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::simt::DeviceConfig;

fn main() {
    let pool = ThreadPool::new(4);
    let device = DeviceConfig::tesla_k40();
    let geometry = GridGeometry::unit(32, 32);
    let mut config = SimulationConfig::standard(geometry, KernelKind::Predictive);
    config.rp = RpConfig {
        kappa: 10,
        dt: 0.035,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.45,
        support_y: 0.1,
        center: (0.5, 0.5),
    };
    config.tolerance = 1e-6;

    // Chirp compresses σ_x by ~2.8 %/step (vx = −chirp·(x − centre)).
    let bunch = GaussianBunch {
        sigma_x: 0.14,
        sigma_y: 0.03,
        center_x: 0.5,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.0,
        chirp: 0.8,
    };
    let mut sim = Simulation::new(&pool, &device, config, bunch.sample(30_000, 4));

    let mut telemetry = Vec::new();
    println!("step |  σ_x    |  σ_y");
    for _ in 0..8 {
        let t = sim.run_step();
        let (sx, sy) = sim.beam().rms_size();
        println!("{:4} | {:.5} | {:.5}", t.step, sx, sy);
        telemetry.push(t);
    }

    println!("\n{}", render(&telemetry, &device));

    // CSR wake of the final (compressed) line density via convolution.
    let n = 64;
    let (cx, _) = sim.beam().centroid();
    let ds = 1.0 / n as f64;
    let mut density = vec![0.0f64; n];
    for p in &sim.beam().particles {
        let i = ((p.x) / ds) as usize;
        if i < n {
            density[i] += p.weight / ds;
        }
    }
    let wake = longitudinal_wake_of(&density, 0.0, ds);
    println!("final-bunch CSR wake (s relative to centroid {:.3}):", cx);
    for i in (0..n).step_by(8) {
        println!(
            "  s = {:+.3}: λ = {:8.3}, wake = {:+9.3}",
            i as f64 * ds - cx,
            density[i],
            wake[i]
        );
    }
}
