//! The paper's validation scenario (Fig. 2): the LCLS bend parameters, a
//! rigid Gaussian bunch, and the analytic steady-state 1-D CSR wake shapes
//! alongside the simulated on-axis forces.
//!
//! ```bash
//! cargo run --release --example lcls_bend
//! ```

use beamdyn::beam::csr::{longitudinal_force_shape, transverse_force_shape};
use beamdyn::beam::forces::ScalarField;
use beamdyn::beam::lattice::{BendLattice, LatticePreset};
use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{KernelKind, Simulation, SimulationConfig};
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::simt::DeviceConfig;

fn main() {
    let lattice = BendLattice::preset(LatticePreset::LclsBend);
    println!(
        "LCLS bend: R0 = {:.2} m, θ = {:.1}°, σ_s = {:.0} µm, Q = {:.0} nC",
        lattice.radius_m,
        lattice.angle_rad.to_degrees(),
        lattice.sigma_s_m * 1e6,
        lattice.charge_c * 1e9
    );
    println!(
        "overtaking length = {:.3} m (sets the retardation depth κ)",
        lattice.overtaking_length_m()
    );
    println!(
        "CSR wake prefactor = {:.3e} (Gaussian units, per charge²)\n",
        lattice.csr_wake_prefactor()
    );

    // Normalised simulation: σ_s maps to 0.1 grid units.
    let pool = ThreadPool::new(4);
    let device = DeviceConfig::tesla_k40();
    let geometry = GridGeometry::unit(48, 48);
    let mut config = SimulationConfig::standard(geometry, KernelKind::Predictive);
    config.rp = RpConfig {
        kappa: 10,
        dt: 0.035,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.4,
        support_y: 0.2,
        center: (0.5, 0.5),
    };
    config.tolerance = 1e-6;
    config.rigid = true; // rigid-bunch validation mode

    let sigma = 0.1;
    let bunch = GaussianBunch {
        sigma_x: sigma,
        sigma_y: lattice.sigma_y_m() / lattice.length_scale_m(sigma),
        center_x: 0.5,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.05,
        chirp: 0.0,
    };
    println!(
        "normalised bunch: σ_x = {:.3}, σ_y = {:.4}\n",
        bunch.sigma_x, bunch.sigma_y
    );

    let mut sim = Simulation::new(&pool, &device, config, bunch.sample(100_000, 11));
    let telemetry = sim.run(4);
    let field = ScalarField::new(geometry, telemetry.last().unwrap().potentials.potentials());

    let h = 0.25 * geometry.dx();
    println!(
        "{:>7} | {:>13} | {:>12} | {:>12}",
        "s/σ", "F_long (sim)", "CSR shape L", "CSR shape T"
    );
    for i in 0..13 {
        let s_over_sigma = -3.0 + 0.5 * i as f64;
        let x = 0.5 + s_over_sigma * sigma;
        let f_long = -(field.sample(x + h, 0.5) - field.sample(x - h, 0.5)) / (2.0 * h);
        println!(
            "{:>+7.1} | {:>+13.4e} | {:>+12.4} | {:>12.4}",
            s_over_sigma,
            f_long,
            longitudinal_force_shape(s_over_sigma),
            transverse_force_shape(s_over_sigma),
        );
    }
}
