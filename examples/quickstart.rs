//! Five-minute tour: run a few steps of the full beam-dynamics loop with
//! the Predictive-RP kernel on the simulated K40 and print what happened.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The run writes a Chrome trace-event timeline to
//! `quickstart_trace.perfetto.json` — open it at <https://ui.perfetto.dev>
//! to see the stage flame graph per thread. Set `BEAMDYN_TRACE=0` to opt
//! out of all trace files (useful on read-only filesystems or when only the
//! stdout report is wanted). With the `trace` feature it additionally
//! writes a JSONL span/counter trace (one object per span close, one flush
//! per step) to `quickstart_trace.jsonl`:
//!
//! ```bash
//! cargo run --example quickstart --features trace
//! BEAMDYN_TRACE=0 cargo run --example quickstart   # no files written
//! ```

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{KernelKind, Simulation, SimulationConfig};
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::simt::DeviceConfig;

fn main() {
    // Trace capture is on by default; BEAMDYN_TRACE=0 runs file-free.
    let tracing = beamdyn::obs::trace_enabled();
    if tracing {
        // JSONL trace capture (only with `--features trace`): every stage
        // span (step/deposit, step/potentials/cluster, …) and per-step
        // counter flush lands in quickstart_trace.jsonl.
        #[cfg(feature = "trace")]
        beamdyn::obs::install_jsonl("quickstart_trace.jsonl").expect("trace file");
        // Perfetto timeline: the whole run as Chrome trace-event JSON,
        // written when the sinks are uninstalled at the end of main.
        beamdyn::obs::install_perfetto("quickstart_trace.perfetto.json").expect("perfetto file");
    }

    // Host pool (drives the simulated SMs and the CPU stages).
    let pool = ThreadPool::new(4);
    // The simulated GPU: a Tesla K40 preset, as in the paper.
    let device = DeviceConfig::tesla_k40();

    // A 32×32 grid over the unit square; an elongated Gaussian bunch.
    let geometry = GridGeometry::unit(32, 32);
    let mut config = SimulationConfig::standard(geometry, KernelKind::Predictive);
    config.rp = RpConfig {
        kappa: 8,
        dt: 0.35 / 8.0,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.42,
        support_y: 0.09,
        center: (0.4, 0.5),
    };
    config.tolerance = 1e-6;

    let bunch = GaussianBunch {
        sigma_x: 0.12,
        sigma_y: 0.03,
        center_x: 0.4,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.2,
        chirp: 0.0,
    };
    let beam = bunch.sample(20_000, 42);

    let mut sim = Simulation::new(&pool, &device, config, beam);
    println!("step | fallback cells | warp eff | L1 hit | simulated GPU time");
    for telemetry in sim.run(6) {
        let stats = telemetry.potentials.combined_stats();
        println!(
            "{:4} | {:14} | {:7.1}% | {:5.1}% | {:.3e} s",
            telemetry.step,
            telemetry.potentials.fallback_cells,
            100.0 * stats.warp_execution_efficiency(&device),
            100.0 * stats.l1_hit_rate(),
            telemetry.potentials.gpu_time.seconds(),
        );
    }
    let (sx, sy) = sim.beam().rms_size();
    println!("\nfinal beam rms size: ({sx:.4}, {sy:.4})");
    let predictor = sim.predictor().expect("Predictive-RP carries a predictor");
    println!("predictor trained {} times", predictor.trained_steps());
    println!("\n{}", beamdyn::core::report::render_counters());
    // Dropping the sinks flushes the JSONL buffer and writes the Perfetto
    // trace — never exit a traced run without this (or an explicit flush).
    beamdyn::obs::uninstall_all();
    if tracing {
        println!("perfetto trace written to quickstart_trace.perfetto.json");
        #[cfg(feature = "trace")]
        println!("trace written to quickstart_trace.jsonl");
    }
}
