//! Runs the same workload through all three retarded-potential kernels —
//! Two-Phase-RP [9], Heuristic-RP [10], and Predictive-RP (this paper) —
//! and prints the head-to-head machine metrics.
//!
//! ```bash
//! cargo run --release --example kernel_comparison
//! ```

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{KernelKind, Simulation, SimulationConfig};
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::simt::DeviceConfig;

fn main() {
    let pool = ThreadPool::new(4);
    let device = DeviceConfig::tesla_k40();
    let steps = 8;

    println!(
        "{:>14} | {:>8} | {:>8} | {:>7} | {:>7} | {:>9} | {:>11}",
        "kernel", "warp eff", "gld eff", "L1 hit", "AI", "GFlops/s", "stage time"
    );
    for kernel in [
        KernelKind::TwoPhase,
        KernelKind::Heuristic,
        KernelKind::Predictive,
    ] {
        let geometry = GridGeometry::unit(32, 32);
        let mut config = SimulationConfig::standard(geometry, kernel);
        config.rp = RpConfig {
            kappa: 12,
            dt: 0.35 / 12.0,
            inner_points: 3,
            beta: 0.5,
            support_x: 0.42,
            support_y: 0.09,
            center: (0.3, 0.5),
        };
        config.tolerance = 1e-6;
        let bunch = GaussianBunch {
            sigma_x: 0.12,
            sigma_y: 0.025,
            center_x: 0.3,
            center_y: 0.5,
            charge: 1.0,
            velocity_spread: 0.0,
            drift_vx: 0.4,
            chirp: 0.0,
        };
        let mut sim = Simulation::new(&pool, &device, config, bunch.sample(20_000, 7));
        let telemetry = sim.run(steps);
        // Average the warm half.
        let warm = &telemetry[steps / 2..];
        let mut stats = beamdyn::simt::KernelStats::default();
        let mut stage = beamdyn::simt::SimTime::ZERO;
        for t in warm {
            stats.merge(&t.potentials.combined_stats());
            stage += t.stage_overall_time();
        }
        let stage = stage.seconds() / warm.len() as f64;
        let name = match kernel {
            KernelKind::TwoPhase => "Two-Phase-RP",
            KernelKind::Heuristic => "Heuristic-RP",
            KernelKind::Predictive => "Predictive-RP",
        };
        println!(
            "{:>14} | {:>7.1}% | {:>7.1}% | {:>6.1}% | {:>7.2} | {:>9.1} | {:>9.3e} s",
            name,
            100.0 * stats.warp_execution_efficiency(&device),
            100.0 * stats.global_load_efficiency(),
            100.0 * stats.l1_hit_rate(),
            stats.arithmetic_intensity(),
            stats.gflops(&device),
            stage,
        );
    }
}
