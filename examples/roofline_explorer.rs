//! Explore the simulated device's roofline: print ceilings and place a
//! few synthetic kernels with controlled arithmetic intensity on it.
//!
//! ```bash
//! cargo run --release --example roofline_explorer
//! ```

use beamdyn::par::ThreadPool;
use beamdyn::simt::{launch, DeviceConfig, LaunchConfig, OpRecorder, Roofline, WarpThread};

/// A synthetic kernel: `flops_per_load` flops per 8-byte streaming load.
struct Synthetic {
    tid: usize,
    left: usize,
    flops_per_load: u32,
}

impl WarpThread for Synthetic {
    fn step(&mut self, rec: &mut OpRecorder) -> bool {
        if self.left == 0 {
            return false;
        }
        self.left -= 1;
        rec.flops(self.flops_per_load);
        // Unique line per lane per iteration: a pure streaming pattern.
        rec.load_f64(0, (self.tid * 4096 + self.left) * 16);
        true
    }
}

fn main() {
    let pool = ThreadPool::new(4);
    let device = DeviceConfig::tesla_k40();
    let mut roofline = Roofline::for_device(&device);

    println!("device: {}", device.name);
    println!("peak DP: {:.0} GF/s", roofline.peak_gflops);
    println!("ridge (measured BW): AI = {:.2} F/B\n", roofline.ridge(1));

    for flops_per_load in [4u32, 32, 256, 2048] {
        let out = launch(
            &pool,
            &device,
            LaunchConfig::cover(4096, 256),
            |tid| {
                Some(Synthetic {
                    tid,
                    left: 32,
                    flops_per_load,
                })
            },
            |_| (),
        );
        let name = format!("{flops_per_load} flops/load");
        roofline.add_kernel(&name, &out.stats, &device);
    }

    println!(
        "{:>16} | {:>9} | {:>10} | {:>10} | bound",
        "kernel", "AI (F/B)", "GFlops/s", "attainable"
    );
    for p in &roofline.points {
        let attainable = roofline.attainable(p.intensity, 1);
        let bound = if p.intensity < roofline.ridge(1) {
            "memory"
        } else {
            "compute"
        };
        println!(
            "{:>16} | {:>9.2} | {:>10.1} | {:>10.1} | {bound}",
            p.name, p.intensity, p.gflops, attainable
        );
    }
}
