//! Property-based invariants spanning crates (proptest).

use beamdyn::beam::RpConfig;
use beamdyn::core::pattern::AccessPattern;
use beamdyn::core::transform::{coldstart_partition, uniform_transform};
use beamdyn::par::ThreadPool;
use beamdyn::pic::{deposit_cic, DepositSample, GridGeometry, MomentGrid, MOMENT_CHARGE};
use beamdyn::quad::{adaptive_simpson, merge_partitions, AdaptiveOptions, Partition};
use beamdyn::simt::{coalesce, SetAssocCache};
use proptest::prelude::*;

fn rp_config() -> RpConfig {
    RpConfig::standard(6, 0.05)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The uniform transform always produces a valid partition of [0, R].
    #[test]
    fn uniform_transform_spans_zero_to_radius(
        counts in prop::collection::vec(0.0f64..60.0, 6),
        radius in 0.06f64..0.3,
    ) {
        let pattern = AccessPattern::from_counts(counts);
        let partition = uniform_transform(&pattern, &rp_config(), radius);
        let (lo, hi) = partition.span();
        prop_assert_eq!(lo, 0.0);
        prop_assert!((hi - radius).abs() < 1e-9);
        // Strictly increasing is enforced by Partition::new; just touch it.
        prop_assert!(partition.cells() >= 1);
    }

    /// Pattern extraction and uniform reconstruction round-trip cell counts.
    #[test]
    fn pattern_roundtrip_preserves_counts(
        counts in prop::collection::vec(1u32..20, 6),
    ) {
        let cfg = rp_config();
        let pattern = AccessPattern::from_counts(counts.iter().map(|&c| c as f64).collect());
        let radius = cfg.max_radius(100);
        let partition = uniform_transform(&pattern, &cfg, radius);
        let back = AccessPattern::from_partition(&partition, &cfg);
        for (j, &c) in counts.iter().enumerate() {
            prop_assert_eq!(back.cells(j), c as usize, "subregion {}", j);
        }
    }

    /// MERGE-LISTS output refines both inputs and stays sorted/deduped.
    #[test]
    fn merge_partitions_refines_inputs(
        cells_a in 1usize..12,
        cells_b in 1usize..12,
    ) {
        let a = coldstart_partition(&rp_config(), 0.3).refine(cells_a);
        let b = coldstart_partition(&rp_config(), 0.3).refine(cells_b);
        let merged = merge_partitions(&a, &b, 1e-12);
        prop_assert!(merged.cells() >= a.cells().max(b.cells()));
        prop_assert!(merged.cells() <= a.cells() + b.cells());
        for w in merged.breaks().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Adaptive Simpson respects its tolerance on smooth integrands.
    #[test]
    fn adaptive_simpson_meets_tolerance(freq in 0.5f64..6.0, tol_exp in 4i32..9) {
        let tol = 10f64.powi(-tol_exp);
        let res = adaptive_simpson(
            |x: f64| (freq * x).sin(),
            0.0,
            2.0,
            AdaptiveOptions { tolerance: tol, max_depth: 40, min_depth: 3 },
        );
        let truth = (1.0 - (2.0 * freq).cos()) / freq;
        prop_assert!(!res.saturated);
        prop_assert!((res.integral - truth).abs() < 20.0 * tol,
            "err {} vs tol {}", (res.integral - truth).abs(), tol);
    }

    /// Deposition conserves total charge for in-domain particles.
    #[test]
    fn deposition_conserves_charge(
        xs in prop::collection::vec(0.05f64..0.95, 1..200),
        weight in 0.1f64..5.0,
    ) {
        let pool = ThreadPool::new(1);
        let g = GridGeometry::unit(16, 16);
        let mut grid = MomentGrid::zeros(g);
        let samples: Vec<DepositSample> = xs
            .iter()
            .map(|&x| DepositSample { x, y: 1.0 - x, weight, vx: 0.0, vy: 0.0 })
            .collect();
        let dropped = deposit_cic(&pool, &mut grid, &samples);
        prop_assert_eq!(dropped, 0);
        let total = grid.component_total(MOMENT_CHARGE) * g.dx() * g.dy();
        let want = weight * xs.len() as f64;
        prop_assert!((total - want).abs() < 1e-9 * want.max(1.0));
    }

    /// The coalescer never transfers less than one segment per distinct
    /// touched segment, and requested bytes are exact.
    #[test]
    fn coalescer_accounting(
        addrs in prop::collection::vec(0u64..4096, 1..32),
    ) {
        let accesses: Vec<(u64, u32)> = addrs.iter().map(|&a| (a * 8, 8u32)).collect();
        let req = coalesce(&accesses, 128);
        prop_assert_eq!(req.requested_bytes, 8 * accesses.len() as u64);
        prop_assert!(req.segments >= 1);
        prop_assert!(req.transferred_bytes() >= 32);
        prop_assert!(!req.lines.is_empty());
        // Lines are sorted unique.
        for w in req.lines.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Cache hit+miss equals accesses; rate stays in [0, 1].
    #[test]
    fn cache_accounting(
        lines in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut cache = SetAssocCache::new(1024, 64, 2);
        for &l in &lines {
            cache.access_line(l);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), lines.len() as u64);
        let r = cache.hit_rate();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// Partition refinement multiplies cell counts exactly.
    #[test]
    fn refine_multiplies_cells(base in 1usize..8, factor in 1usize..6) {
        let p = Partition::whole(0.0, 1.0).refine(base).refine(factor);
        prop_assert_eq!(p.cells(), base * factor);
    }
}
