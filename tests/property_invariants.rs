//! Property-based invariants spanning crates (proptest).

use beamdyn::beam::RpConfig;
use beamdyn::core::kernels::cells_for_point;
use beamdyn::core::pattern::AccessPattern;
use beamdyn::core::transform::{coldstart_partition, uniform_transform};
use beamdyn::core::CellLists;
use beamdyn::par::ThreadPool;
use beamdyn::pic::{deposit_cic, DepositSample, GridGeometry, MomentGrid, MOMENT_CHARGE};
use beamdyn::quad::{adaptive_simpson, merge_partitions, AdaptiveOptions, Partition};
use beamdyn::simt::{coalesce, SetAssocCache};
use proptest::prelude::*;

fn rp_config() -> RpConfig {
    RpConfig::standard(6, 0.05)
}

/// Builds an arbitrary valid partition from a start point and a list of
/// strictly positive gaps (the proptest inputs).
fn build_partition(start: f64, gaps: &[f64]) -> Partition {
    let mut breaks = vec![start];
    for &g in gaps {
        breaks.push(breaks.last().unwrap() + g);
    }
    Partition::new(breaks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The uniform transform always produces a valid partition of [0, R].
    #[test]
    fn uniform_transform_spans_zero_to_radius(
        counts in prop::collection::vec(0.0f64..60.0, 6),
        radius in 0.06f64..0.3,
    ) {
        let pattern = AccessPattern::from_counts(counts);
        let partition = uniform_transform(&pattern, &rp_config(), radius);
        let (lo, hi) = partition.span();
        prop_assert_eq!(lo, 0.0);
        prop_assert!((hi - radius).abs() < 1e-9);
        // Strictly increasing is enforced by Partition::new; just touch it.
        prop_assert!(partition.cells() >= 1);
    }

    /// Pattern extraction and uniform reconstruction round-trip cell counts.
    #[test]
    fn pattern_roundtrip_preserves_counts(
        counts in prop::collection::vec(1u32..20, 6),
    ) {
        let cfg = rp_config();
        let pattern = AccessPattern::from_counts(counts.iter().map(|&c| c as f64).collect());
        let radius = cfg.max_radius(100);
        let partition = uniform_transform(&pattern, &cfg, radius);
        let back = AccessPattern::from_partition(&partition, &cfg);
        for (j, &c) in counts.iter().enumerate() {
            prop_assert_eq!(back.cells(j), c as usize, "subregion {}", j);
        }
    }

    /// MERGE-LISTS output refines both inputs and stays sorted/deduped.
    #[test]
    fn merge_partitions_refines_inputs(
        cells_a in 1usize..12,
        cells_b in 1usize..12,
    ) {
        let a = coldstart_partition(&rp_config(), 0.3).refine(cells_a);
        let b = coldstart_partition(&rp_config(), 0.3).refine(cells_b);
        let merged = merge_partitions(&a, &b, 1e-12);
        prop_assert!(merged.cells() >= a.cells().max(b.cells()));
        prop_assert!(merged.cells() <= a.cells() + b.cells());
        for w in merged.breaks().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Adaptive Simpson respects its tolerance on smooth integrands.
    #[test]
    fn adaptive_simpson_meets_tolerance(freq in 0.5f64..6.0, tol_exp in 4i32..9) {
        let tol = 10f64.powi(-tol_exp);
        let res = adaptive_simpson(
            |x: f64| (freq * x).sin(),
            0.0,
            2.0,
            AdaptiveOptions { tolerance: tol, max_depth: 40, min_depth: 3 },
        );
        let truth = (1.0 - (2.0 * freq).cos()) / freq;
        prop_assert!(!res.saturated);
        prop_assert!((res.integral - truth).abs() < 20.0 * tol,
            "err {} vs tol {}", (res.integral - truth).abs(), tol);
    }

    /// Deposition conserves total charge for in-domain particles.
    #[test]
    fn deposition_conserves_charge(
        xs in prop::collection::vec(0.05f64..0.95, 1..200),
        weight in 0.1f64..5.0,
    ) {
        let pool = ThreadPool::new(1);
        let g = GridGeometry::unit(16, 16);
        let mut grid = MomentGrid::zeros(g);
        let samples: Vec<DepositSample> = xs
            .iter()
            .map(|&x| DepositSample { x, y: 1.0 - x, weight, vx: 0.0, vy: 0.0 })
            .collect();
        let dropped = deposit_cic(&pool, &mut grid, &samples);
        prop_assert_eq!(dropped, 0);
        let total = grid.component_total(MOMENT_CHARGE) * g.dx() * g.dy();
        let want = weight * xs.len() as f64;
        prop_assert!((total - want).abs() < 1e-9 * want.max(1.0));
    }

    /// The coalescer never transfers less than one segment per distinct
    /// touched segment, and requested bytes are exact.
    #[test]
    fn coalescer_accounting(
        addrs in prop::collection::vec(0u64..4096, 1..32),
    ) {
        let accesses: Vec<(u64, u32)> = addrs.iter().map(|&a| (a * 8, 8u32)).collect();
        let req = coalesce(&accesses, 128);
        prop_assert_eq!(req.requested_bytes, 8 * accesses.len() as u64);
        prop_assert!(req.segments >= 1);
        prop_assert!(req.transferred_bytes() >= 32);
        prop_assert!(!req.lines.is_empty());
        // Lines are sorted unique.
        for w in req.lines.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Cache hit+miss equals accesses; rate stays in [0, 1].
    #[test]
    fn cache_accounting(
        lines in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut cache = SetAssocCache::new(1024, 64, 2);
        for &l in &lines {
            cache.access_line(l);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), lines.len() as u64);
        let r = cache.hit_rate();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// Partition refinement multiplies cell counts exactly.
    #[test]
    fn refine_multiplies_cells(base in 1usize..8, factor in 1usize..6) {
        let p = Partition::whole(0.0, 1.0).refine(base).refine(factor);
        prop_assert_eq!(p.cells(), base * factor);
    }

    /// `Partition::clip` honours its contract at the edges: `None` exactly
    /// when the ranges miss each other, otherwise a strictly increasing
    /// partition spanning the clamped overlap.
    #[test]
    fn clip_respects_bounds(
        start in 0.0f64..0.3,
        gaps in prop::collection::vec(0.01f64..0.4, 1..8),
        a in -0.5f64..1.5,
        width in 0.0f64..1.5,
    ) {
        let p = build_partition(start, &gaps);
        let (lo, hi) = p.span();
        let b = a + width;
        match p.clip(a, b) {
            None => prop_assert!(b <= lo || a >= hi || b - a < 1e-12,
                "clip returned None on overlapping range [{a}, {b}] vs span [{lo}, {hi}]"),
            Some(c) => {
                let (clo, chi) = c.span();
                prop_assert!((clo - a.max(lo)).abs() == 0.0);
                prop_assert!((chi - b.min(hi)).abs() == 0.0);
                for w in c.breaks().windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
                // Interior breaks are preserved verbatim.
                for &x in p.breaks() {
                    if x > a && x < b {
                        prop_assert!(c.breaks().contains(&x));
                    }
                }
            }
        }
    }

    /// `cells_for_point` degenerate radii: r ≤ 0 yields no cells; r inside
    /// the first cell yields exactly one clamped cell; r beyond the last
    /// break reproduces the partition's own cells.
    #[test]
    fn cells_for_point_degenerate_radii(
        start in 0.0f64..0.3,
        gaps in prop::collection::vec(0.01f64..0.4, 1..8),
    ) {
        let p = build_partition(start, &gaps);
        let (lo, hi) = p.span();

        prop_assert!(cells_for_point(&p, 0.0).is_empty());
        prop_assert!(cells_for_point(&p, -1.0).is_empty());

        // r strictly inside the first cell (and past the span start).
        let first_hi = p.breaks()[1];
        let r = lo.max(0.0) + 0.5 * (first_hi - lo.max(0.0));
        if r > 0.0 {
            let cells = cells_for_point(&p, r);
            prop_assert_eq!(cells.len(), 1);
            prop_assert!((cells[0].1 - r).abs() == 0.0);
        }

        // r beyond the last break: the clip is a no-op past the span.
        let cells = cells_for_point(&p, hi + 1.0);
        let own: Vec<(f64, f64)> = p.iter_cells().collect();
        prop_assert_eq!(cells, own);
    }

    /// The packed CSR writer is cell-for-cell identical to the allocating
    /// reference `cells_for_point`, padding lanes included.
    #[test]
    fn push_clipped_lane_matches_cells_for_point(
        start in 0.0f64..0.3,
        gaps in prop::collection::vec(0.01f64..0.4, 1..8),
        radius in -0.2f64..2.0,
    ) {
        let p = build_partition(start, &gaps);
        let mut lists = CellLists::default();
        lists.clear();
        lists.push_clipped_lane(7, &p, radius);
        lists.push_padding();
        lists.push_clipped_lane(9, &p, radius * 0.5);

        let want = cells_for_point(&p, radius);
        let (point, got) = lists.lane(0).expect("lane 0 is real");
        prop_assert_eq!(point, 7);
        prop_assert_eq!(got, want.as_slice());
        prop_assert!(lists.lane(1).is_none(), "padding lane yields no work");
        let want_half = cells_for_point(&p, radius * 0.5);
        let (point, got) = lists.lane(2).expect("lane 2 is real");
        prop_assert_eq!(point, 9);
        prop_assert_eq!(got, want_half.as_slice());
        prop_assert_eq!(lists.len(), 3);
        prop_assert_eq!(lists.total_cells(), want.len() + want_half.len());
    }
}
