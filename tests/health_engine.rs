//! The fleet health engine, end to end in one process: a real
//! [`SessionManager`] with its watchdog thread behind a real
//! [`MonitorServer`], driven into a stall and back out over real sockets.
//!
//! Pins the observability acceptance contract (DESIGN.md §15):
//!
//! * a session whose `step_delay_ms` dwarfs the stall deadline trips
//!   `watchdog.session_stalled` on `/alerts` (firing → resolved lifecycle),
//!   degrades `/healthz` to 503, and leaves an on-disk post-mortem whose
//!   flight-ring tail explains the stall;
//! * `/readyz` stays 200 the whole time — *degraded* (failing SLOs) and
//!   *not ready* (don't route to me) are different signals, and the
//!   watchdog must never conflate them;
//! * admission back-pressure: once `pending == max_pending`, POST
//!   `/sessions` answers 429 with a `Retry-After` header, bumps
//!   `sessions.rejected`, and reports `admission.saturated` on `/alerts`;
//! * `/debug/flight` (global ring) and `/sessions/{id}/debug/flight`
//!   (per-session ring) both serve the black-box events as JSON, and the
//!   firing alert is visible as `beamdyn_alerts_firing` on `/metrics`.
//!
//! Kept to a single `#[test]` because the obs registry — and with it the
//! alert registry and flight recorder — is process-global.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use beamdyn::core::{
    BackendKind, HealthConfig, SessionManager, SessionManagerConfig, SessionState, StatusBoard,
};
use beamdyn::obs;
use beamdyn::serve::{MonitorServer, ServeConfig, ServeContext};
use beamdyn::simt::DeviceConfig;
use beamdyn_bench::json;
use beamdyn_bench::scrape::{
    firing_alert_names, http_delete, http_get, http_post, http_request_raw, parse_exposition,
};

/// The drill's watchdog deadline floor: far shorter than the stalled
/// session's `step_delay_ms`, far longer than a real 8×8 step.
const STALL_DEADLINE: Duration = Duration::from_millis(300);
/// Admission bound: small enough to fill with three queued sessions.
const MAX_PENDING: usize = 3;

fn poll_until(what: &str, deadline: Duration, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while !check() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn firing(addr: &str) -> Vec<String> {
    let (code, body) = http_get(addr, "/alerts").expect("GET /alerts");
    assert_eq!(code, 200, "{body}");
    firing_alert_names(&body)
}

#[test]
fn stall_drill_fires_explains_and_recovers() {
    obs::uninstall_all();
    obs::reset();
    // Route post-mortem dumps (and nothing else in this test writes
    // artifacts) to a private temp dir.
    let dump_dir =
        std::env::temp_dir().join(format!("beamdyn_health_engine_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump_dir);
    std::env::set_var("BEAMDYN_BENCH_DIR", &dump_dir);

    // One step worker and one workspace slot: the stalled session wedges
    // the entire stepping plane and holds the only slot, so queued fillers
    // stay deterministically pending (no second stall can fire).
    let manager = SessionManager::start(SessionManagerConfig {
        threads: 2,
        step_workers: 1,
        slots: 1,
        default_backend: BackendKind::TracedSimt,
        device: DeviceConfig::tesla_k40(),
        health: HealthConfig {
            stall_deadline: STALL_DEADLINE,
            max_pending: MAX_PENDING,
            ..HealthConfig::default()
        },
        ..SessionManagerConfig::default()
    });
    let server = MonitorServer::start(
        ServeConfig::default(),
        ServeContext {
            status: StatusBoard::new("predictive", "traced-simt"),
            events: obs::BroadcastSink::new(),
            ready: Arc::new(AtomicBool::new(true)),
            sessions: Some(Arc::clone(&manager)),
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // Healthy start.
    assert_eq!(http_get(&addr, "/healthz").expect("healthz").0, 200);
    assert!(firing(&addr).is_empty(), "no alerts on a fresh fleet");

    // --- The stall: a session that sleeps 5 s per step on the only worker.
    let (code, body) = http_post(
        &addr,
        "/sessions",
        r#"{"name":"stall-drill","resolution":8,"particles":400,"steps":3,"step_delay_ms":5000}"#,
    )
    .expect("POST stall session");
    assert_eq!(code, 201, "{body}");
    let stall_id = json::parse(&body)
        .expect("201 JSON")
        .get("id")
        .and_then(|v| v.as_f64())
        .expect("id") as u64;
    poll_until("stall session admitted", Duration::from_secs(30), || {
        manager.state(stall_id) == Some(SessionState::Running)
    });

    // --- Back-pressure while the worker is wedged: fill the pending queue
    // to its bound, then one more POST must bounce with 429 + Retry-After.
    let rejected_before = obs::counter_value("sessions.rejected").unwrap_or(0);
    for i in 0..MAX_PENDING {
        let (code, body) = http_post(
            &addr,
            "/sessions",
            &format!(r#"{{"name":"filler-{i}","resolution":8,"particles":400,"steps":1}}"#),
        )
        .expect("POST filler");
        assert_eq!(code, 201, "filler {i} must queue: {body}");
    }
    let (code, headers, body) = http_request_raw(
        &addr,
        "POST",
        "/sessions",
        r#"{"name":"one-too-many","resolution":8,"particles":400,"steps":1}"#,
    )
    .expect("POST over bound");
    assert_eq!(code, 429, "queue at bound must reject: {body}");
    let retry_after: u64 = headers
        .get("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");
    assert!(
        (1..=30).contains(&retry_after),
        "Retry-After hint must be a sane bound, got {retry_after}"
    );
    let rejection = json::parse(&body).expect("429 body is JSON");
    assert_eq!(
        rejection.get("limit").and_then(|v| v.as_f64()),
        Some(MAX_PENDING as f64)
    );
    assert_eq!(
        obs::counter_value("sessions.rejected").unwrap_or(0),
        rejected_before + 1,
        "every rejection is counted"
    );
    poll_until(
        "admission.saturated on /alerts",
        Duration::from_secs(10),
        || firing(&addr).iter().any(|a| a == "admission.saturated"),
    );

    // --- The watchdog verdict: the stall alert fires within a few
    // deadlines (the first step completes before the 5 s sleep bites).
    let stalled = format!("watchdog.session_stalled@{stall_id}");
    poll_until(&stalled, Duration::from_secs(20), || {
        firing(&addr).contains(&stalled)
    });

    // Honest health, stable readiness — the pin for the §15 semantics:
    // /healthz answers "am I healthy" (503 while a critical alert fires),
    // /readyz answers "can I take traffic" (yes — degraded is not down).
    let (code, body) = http_get(&addr, "/healthz").expect("healthz while stalled");
    assert_eq!(code, 503, "critical alert must degrade /healthz: {body}");
    assert_eq!(
        http_get(&addr, "/readyz").expect("readyz while stalled").0,
        200,
        "/readyz must stay 200 while /healthz is alert-degraded"
    );

    // The alert is visible to Prometheus scrapers too.
    let (code, text) = http_get(&addr, "/metrics").expect("metrics while stalled");
    assert_eq!(code, 200);
    let exposition = parse_exposition(&text).expect("valid exposition while firing");
    assert_eq!(
        exposition.labelled("beamdyn_alerts_firing", "alert", "watchdog.session_stalled"),
        Some(1.0),
        "firing alert must be a labelled gauge on /metrics"
    );

    // --- The flight recorder explains the moment, globally and per session.
    let (code, body) = http_get(&addr, "/debug/flight").expect("GET /debug/flight");
    assert_eq!(code, 200);
    let global_ring = json::parse(&body).expect("/debug/flight is JSON");
    assert!(
        global_ring
            .get("events")
            .and_then(|v| v.as_array())
            .is_some_and(|events| {
                events
                    .iter()
                    .any(|e| e.get("kind").and_then(|k| k.as_str()) == Some("watchdog"))
            }),
        "global ring must carry the watchdog verdict: {body}"
    );
    let (code, body) =
        http_get(&addr, &format!("/sessions/{stall_id}/debug/flight")).expect("session flight");
    assert_eq!(code, 200);
    let session_ring = json::parse(&body).expect("session flight is JSON");
    let events = session_ring
        .get("events")
        .and_then(|v| v.as_array())
        .expect("session ring has events");
    assert!(
        events
            .iter()
            .all(|e| e.get("session").and_then(|s| s.as_f64()) == Some(stall_id as f64)),
        "per-session ring must only hold this session's events"
    );
    assert!(
        events
            .iter()
            .any(|e| e.get("kind").and_then(|k| k.as_str()) == Some("lifecycle")),
        "per-session ring records the lifecycle transitions"
    );
    assert_eq!(
        http_get(&addr, "/sessions/999/debug/flight")
            .expect("unknown session flight")
            .0,
        404
    );

    // --- The post-mortem dump: written on the firing edge, named after
    // the session, carrying its flight tail.
    let dump = dump_dir.join(format!("POSTMORTEM_stall_session{stall_id}.json"));
    poll_until("post-mortem dump on disk", Duration::from_secs(10), || {
        dump.is_file()
    });
    let dump_body = std::fs::read_to_string(&dump).expect("post-mortem readable");
    assert!(
        dump_body.contains("\"session_flight\"") && dump_body.contains("watchdog.session_stalled"),
        "post-mortem must carry the session flight ring and the alert: {dump_body}"
    );

    // --- Recovery: evict the wedged session; the fillers drain, every
    // alert resolves, and /healthz goes honest-green again.
    assert_eq!(
        http_delete(&addr, &format!("/sessions/{stall_id}"))
            .expect("DELETE stall")
            .0,
        200
    );
    poll_until("all alerts resolved", Duration::from_secs(60), || {
        firing(&addr).is_empty()
    });
    poll_until("/healthz recovered", Duration::from_secs(10), || {
        http_get(&addr, "/healthz").expect("healthz").0 == 200
    });
    // The firing→resolved lifecycle is preserved in the /alerts history.
    let (code, body) = http_get(&addr, "/alerts").expect("GET /alerts after recovery");
    assert_eq!(code, 200);
    let alerts = json::parse(&body).expect("/alerts is JSON");
    assert_eq!(
        alerts.get("healthy"),
        Some(&json::Value::Bool(true)),
        "/alerts must report healthy after recovery: {body}"
    );
    let resolved = alerts
        .get("resolved")
        .and_then(|v| v.as_array())
        .expect("resolved history");
    assert!(
        resolved.iter().any(|a| {
            a.get("name").and_then(|n| n.as_str()) == Some("watchdog.session_stalled")
                && a.get("resolved_at_ns").and_then(|v| v.as_f64()).is_some()
        }),
        "resolved history must keep the stall with its resolution time: {body}"
    );
    assert!(
        manager.wait_idle(Duration::from_secs(60)),
        "fillers never drained after the stall was evicted"
    );

    server.shutdown();
    server.join();
    manager.shutdown();
    std::env::remove_var("BEAMDYN_BENCH_DIR");
    let _ = std::fs::remove_dir_all(&dump_dir);
    obs::uninstall_all();
}
