//! The multi-tenant session service, end to end in one process: a real
//! [`SessionManager`] behind a real [`MonitorServer`] on a TCP socket,
//! exercised the way tenants and scrapers actually hit it.
//!
//! Pins the service acceptance contract (DESIGN.md §14):
//!
//! * the `/sessions` route family — POST → 201 + id, listing, per-session
//!   summary/status/metrics, DELETE — over real HTTP;
//! * every malformed request (bad JSON, unknown field, bad enum value,
//!   out-of-range number, oversized body, bad id) answers a *structured*
//!   4xx naming the field and accepted values — the daemon never panics;
//! * `/metrics` stays a valid, parseable exposition while sessions churn
//!   (submit / run / delete) under concurrent scrapers — no torn output;
//! * per-subscriber event rings drop oldest on overflow and every drop is
//!   accounted in `telemetry.dropped_events` — verified *exactly* with a
//!   capacity-2 ring and a deliberately lazy subscriber.
//!
//! Kept to a single `#[test]` because the obs registry is process-global.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use beamdyn::core::{
    BackendKind, ScenarioSpec, SessionManager, SessionManagerConfig, SessionState, StatusBoard,
};
use beamdyn::obs;
use beamdyn::serve::{MonitorServer, ServeConfig, ServeContext};
use beamdyn::simt::DeviceConfig;
use beamdyn_bench::json;
use beamdyn_bench::scrape::{http_delete, http_get, http_post, parse_exposition};

/// Event-ring capacity for every session bus in this test: small enough
/// that a lazy subscriber overflows it deterministically.
const EVENTS_CAPACITY: usize = 2;

fn tiny_spec(steps: usize) -> ScenarioSpec {
    ScenarioSpec {
        nx: 8,
        ny: 8,
        particles: 400,
        steps,
        ..ScenarioSpec::default()
    }
}

fn wait_for_state(mgr: &SessionManager, id: u64, want: SessionState) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match mgr.state(id) {
            Some(state) if state == want => return,
            Some(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            other => panic!("session {id} never reached {want:?} (last: {other:?})"),
        }
    }
}

#[test]
fn session_service_contract_over_real_http() {
    obs::uninstall_all();
    obs::reset();

    let manager = SessionManager::start(SessionManagerConfig {
        threads: 2,
        step_workers: 2,
        // One slot: admission is strictly serial, which both exercises the
        // pending queue under churn and makes the dropped-events phase
        // deterministic (we subscribe while the target is still pending).
        slots: 1,
        events_capacity: EVENTS_CAPACITY,
        default_backend: BackendKind::TracedSimt,
        device: DeviceConfig::tesla_k40(),
        ..SessionManagerConfig::default()
    });
    let events = obs::BroadcastSink::new();
    let status = StatusBoard::new("predictive", "traced-simt");
    let server = MonitorServer::start(
        ServeConfig::default(),
        ServeContext {
            status,
            events,
            ready: Arc::new(AtomicBool::new(true)),
            sessions: Some(Arc::clone(&manager)),
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // --- Structured errors: every malformed request is a 4xx with a JSON
    // body naming the field; none of them may panic the server.
    let bad_requests: &[(&str, &str, &[&str])] = &[
        ("{oops", "body", &[]),
        ("[1,2]", "body", &[]),
        (r#"{"kernl":"predictive"}"#, "kernl", &["kernel"]),
        (r#"{"kernel":"warp"}"#, "kernel", &["predictive"]),
        (r#"{"backend":"cuda"}"#, "backend", &["traced", "native"]),
        (r#"{"lattice":"fodo"}"#, "lattice", &["lcls-bend"]),
        (r#"{"steps":0}"#, "steps", &[]),
        (r#"{"particles":2.5}"#, "particles", &[]),
        (r#"{"grid":{"nx":2}}"#, "grid.nx", &[]),
        (r#"{"bunch":{"sigma_z":1}}"#, "bunch.sigma_z", &["sigma_x"]),
        (r#"{"tau":-1}"#, "tolerance", &[]),
    ];
    for (body, field, accepted) in bad_requests {
        let (code, response) = http_post(&addr, "/sessions", body).expect("POST");
        assert_eq!(code, 400, "{body} must be rejected, got {code}: {response}");
        let parsed = json::parse(&response)
            .unwrap_or_else(|e| panic!("400 body for {body} is not JSON: {e}\n{response}"));
        assert_eq!(
            parsed.get("field").and_then(|v| v.as_str()),
            Some(*field),
            "400 for {body} names the offending field"
        );
        let listed: Vec<String> = parsed
            .get("accepted")
            .and_then(|v| v.as_array())
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        for want in *accepted {
            assert!(
                listed.iter().any(|v| v == want),
                "400 for {body} must list accepted value {want}, got {listed:?}"
            );
        }
    }
    // Oversized body → 413, bad ids → 400/404, wrong method → 405.
    let huge = format!(r#"{{"name":"{}"}}"#, "x".repeat(2 << 20));
    assert_eq!(
        http_post(&addr, "/sessions", &huge).expect("POST huge").0,
        413
    );
    assert_eq!(http_get(&addr, "/sessions/abc").expect("bad id").0, 400);
    assert_eq!(http_get(&addr, "/sessions/999").expect("GET 999").0, 404);
    assert_eq!(
        http_delete(&addr, "/sessions/999").expect("DELETE 999").0,
        404
    );
    assert_eq!(
        http_get(&addr, "/sessions/999/status")
            .expect("status 999")
            .0,
        404
    );
    assert_eq!(
        http_post(&addr, "/metrics", "{}").expect("POST metrics").0,
        405
    );

    // --- Happy path: POST → 201 + location, run to completion, per-session
    // status + scoped metrics, then DELETE.
    let (code, body) = http_post(
        &addr,
        "/sessions",
        r#"{"resolution":8,"particles":400,"steps":2,"kernel":"heuristic","backend":"native"}"#,
    )
    .expect("POST session");
    assert_eq!(code, 201, "{body}");
    let created = json::parse(&body).expect("201 body is JSON");
    let id = created.get("id").and_then(|v| v.as_f64()).expect("id") as u64;
    assert_eq!(
        created.get("location").and_then(|v| v.as_str()),
        Some(format!("/sessions/{id}").as_str())
    );
    wait_for_state(&manager, id, SessionState::Done);
    let (code, body) = http_get(&addr, &format!("/sessions/{id}/status")).expect("status");
    assert_eq!(code, 200);
    let session_status = json::parse(&body).expect("status JSON");
    assert_eq!(
        session_status
            .get("steps_completed")
            .and_then(|v| v.as_f64()),
        Some(2.0)
    );
    assert_eq!(
        session_status.get("backend").and_then(|v| v.as_str()),
        Some("native-fast")
    );
    let (code, text) = http_get(&addr, &format!("/sessions/{id}/metrics")).expect("metrics");
    assert_eq!(code, 200);
    let scoped = parse_exposition(&text).expect("scoped exposition parses");
    assert_eq!(
        scoped.labelled("beamdyn_session_steps_total", "session", &id.to_string()),
        Some(2.0),
        "per-session step counter scoped by session label"
    );
    // The session label also appears in the global exposition without
    // disturbing the unscoped families.
    let (_, global) = http_get(&addr, "/metrics").expect("global metrics");
    let global = parse_exposition(&global).expect("global exposition parses");
    assert!(
        global
            .labelled("beamdyn_session_steps_total", "session", &id.to_string())
            .is_some(),
        "global /metrics carries the per-session series"
    );
    assert!(
        global
            .value("beamdyn_sessions_completed_total")
            .unwrap_or(0.0)
            >= 1.0,
        "fleet-wide session counters advance"
    );
    let (code, _) = http_delete(&addr, &format!("/sessions/{id}")).expect("DELETE");
    assert_eq!(code, 200);
    assert_eq!(
        http_get(&addr, &format!("/sessions/{id}")).expect("GET").0,
        404
    );
    assert!(
        !parse_exposition(&http_get(&addr, "/metrics").expect("metrics").1)
            .expect("parses")
            .samples
            .iter()
            .any(|s| s.label("session") == Some(id.to_string().as_str())),
        "deleting a session drops its scoped series (bounded cardinality)"
    );

    // --- Exact dropped-events accounting: a 6-step session watched by a
    // subscriber that never drains a capacity-2 ring. The single workspace
    // slot is held by a blocker, so the subscription provably exists
    // before the target's first step — every overflow is a counted drop:
    // 6 published - 2 retained = 4 dropped.
    let dropped_before = obs::counter_value("telemetry.dropped_events").unwrap_or(0);
    let mut blocker = tiny_spec(4);
    blocker.step_delay_ms = 60;
    let blocker_id = manager.submit(blocker).expect("submit blocker");
    let target_id = manager.submit(tiny_spec(6)).expect("submit target");
    assert_eq!(manager.state(target_id), Some(SessionState::Queued));
    let rx = manager
        .subscribe(target_id)
        .expect("subscribe while queued");
    wait_for_state(&manager, target_id, SessionState::Done);
    let retained = rx.drain();
    assert_eq!(
        retained.len(),
        EVENTS_CAPACITY,
        "lazy subscriber keeps exactly the ring capacity"
    );
    assert_eq!(
        retained.iter().map(|e| e.step).collect::<Vec<_>>(),
        vec![4, 5],
        "ring keeps the newest events (drop-oldest)"
    );
    let dropped_after = obs::counter_value("telemetry.dropped_events").unwrap_or(0);
    assert_eq!(
        dropped_after - dropped_before,
        (6 - EVENTS_CAPACITY) as u64,
        "every overflow is accounted in telemetry.dropped_events"
    );
    assert_eq!(manager.state(blocker_id), Some(SessionState::Done));

    // --- Churn under concurrent scrapers: three threads hammer /metrics
    // and /sessions while sessions are submitted, run, and deleted. Every
    // response must be a complete, parseable exposition — a torn or
    // interleaved body would fail the strict parser.
    let stop = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let (code, text) = http_get(&addr, "/metrics").expect("scrape /metrics");
                    assert_eq!(code, 200);
                    parse_exposition(&text).expect("no torn exposition under churn");
                    let (code, listing) = http_get(&addr, "/sessions").expect("scrape /sessions");
                    assert_eq!(code, 200);
                    json::parse(&listing).expect("listing stays valid JSON under churn");
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();
    let mut churn_ids = Vec::new();
    for i in 0..6 {
        let (code, body) = http_post(
            &addr,
            "/sessions",
            &format!(r#"{{"name":"churn-{i}","resolution":8,"particles":400,"steps":2}}"#),
        )
        .expect("POST churn");
        assert_eq!(code, 201, "{body}");
        let id = json::parse(&body)
            .expect("201 JSON")
            .get("id")
            .and_then(|v| v.as_f64())
            .expect("id") as u64;
        churn_ids.push(id);
        // Evict every other session mid-flight — deletes must interleave
        // cleanly with scrapes and running steps.
        if i % 2 == 1 {
            let (code, _) = http_delete(&addr, &format!("/sessions/{id}")).expect("DELETE churn");
            assert_eq!(code, 200);
        }
    }
    assert!(
        manager.wait_idle(Duration::from_secs(60)),
        "churn sessions never settled"
    );
    stop.store(true, std::sync::atomic::Ordering::Release);
    let total_scrapes: usize = scrapers
        .into_iter()
        .map(|t| t.join().expect("scraper thread panicked"))
        .sum();
    assert!(total_scrapes > 0, "scrapers never ran");
    // Survivors completed despite the churn; the fleet listing agrees.
    for (i, id) in churn_ids.iter().enumerate() {
        if i % 2 == 0 {
            let state = manager.state(*id);
            assert!(
                matches!(state, Some(SessionState::Done)),
                "churn survivor {id} should finish, got {state:?}"
            );
        }
    }

    server.join();
    manager.shutdown();
    obs::uninstall_all();
}
