//! Multiplexed-session bit-identity: running K sessions concurrently
//! through the [`SessionManager`] — interleaved round-robin on shared
//! scheduler workers, workspaces leased from the slab pool and *reused*
//! across sessions — must produce **bit-identical** results to running
//! each scenario alone on a dedicated [`Simulation`].
//!
//! This is the multi-tenant extension of the repo's determinism contract
//! (`tests/determinism.rs`, `tests/backend_equivalence.rs`): the compute
//! pool's scoped loops are pool-width-deterministic and
//! scheduling-independent, and `WorkspacePool::release` →
//! `reset_for_session` clears all cross-session state (capacities may
//! carry over — they never affect numerics). Checked for every kernel on
//! both backends, with more sessions than pool slots so admission
//! queueing and workspace reuse actually happen.
//!
//! Kept to a single `#[test]` because the obs registry is process-global.

use std::time::Duration;

use beamdyn::core::{
    BackendKind, KernelKind, ScenarioSpec, SessionManager, SessionManagerConfig, SessionState,
    Simulation,
};
use beamdyn::obs;
use beamdyn::par::ThreadPool;
use beamdyn::simt::DeviceConfig;

/// Shared compute-pool width: the reference runs must use the same width
/// as the manager's pool, since lane partitioning follows pool width.
const THREADS: usize = 3;
const STEPS: usize = 3;

fn scenario(kernel: KernelKind, backend: BackendKind) -> ScenarioSpec {
    ScenarioSpec {
        name: format!("{}-{}", spec_kernel_name(kernel), backend.name()),
        kernel,
        backend: Some(backend),
        nx: 12,
        ny: 12,
        particles: 1_200,
        steps: STEPS,
        ..ScenarioSpec::default()
    }
}

fn spec_kernel_name(kernel: KernelKind) -> &'static str {
    match kernel {
        KernelKind::TwoPhase => "two-phase",
        KernelKind::Heuristic => "heuristic",
        KernelKind::Predictive => "predictive",
    }
}

/// Final potentials + run totals from a dedicated single-tenant run.
fn reference_run(spec: &ScenarioSpec) -> (Vec<f64>, u64, u64) {
    let pool = ThreadPool::new(THREADS);
    let device = DeviceConfig::tesla_k40();
    let (config, beam) = spec.build(spec.backend.expect("spec names its backend"));
    let mut sim = Simulation::new(&pool, &device, config, beam);
    let mut fallback: u64 = 0;
    let mut launches: u64 = 0;
    for _ in 0..STEPS {
        let t = sim.run_step();
        fallback += t.potentials.fallback_cells as u64;
        launches += t.potentials.launches as u64;
    }
    let potentials = sim
        .last_potentials()
        .expect("run produced potentials")
        .as_slice()
        .to_vec();
    (potentials, fallback, launches)
}

#[test]
fn multiplexed_sessions_are_bit_identical_to_sequential_runs() {
    obs::uninstall_all();
    obs::reset();

    let combos: Vec<ScenarioSpec> = [
        KernelKind::TwoPhase,
        KernelKind::Heuristic,
        KernelKind::Predictive,
    ]
    .into_iter()
    .flat_map(|kernel| {
        [BackendKind::TracedSimt, BackendKind::NativeFast]
            .into_iter()
            .map(move |backend| scenario(kernel, backend))
    })
    .collect();

    // Ground truth: each scenario alone, on a fresh pool of the same width.
    let references: Vec<(Vec<f64>, u64, u64)> = combos.iter().map(reference_run).collect();

    // The multiplexed fleet: every combo twice (12 sessions) against only
    // 4 workspace slots, so sessions queue for admission and workspaces
    // get reused by later tenants; 3 scheduler workers interleave steps.
    let manager = SessionManager::start(SessionManagerConfig {
        threads: THREADS,
        step_workers: 3,
        slots: 4,
        default_backend: BackendKind::TracedSimt,
        device: DeviceConfig::tesla_k40(),
        ..SessionManagerConfig::default()
    });
    let mut submitted: Vec<(usize, u64)> = Vec::new();
    for round in 0..2 {
        for (c, spec) in combos.iter().enumerate() {
            let mut spec = spec.clone();
            spec.name = format!("{}-r{round}", spec.name);
            let id = manager.submit(spec).expect("submit");
            submitted.push((c, id));
        }
    }
    assert!(
        manager.wait_idle(Duration::from_secs(120)),
        "sessions never finished"
    );

    for (c, id) in &submitted {
        let spec = &combos[*c];
        assert_eq!(
            manager.state(*id),
            Some(SessionState::Done),
            "session {id} ({}) must complete",
            spec.name
        );
        let (ref_potentials, ref_fallback, ref_launches) = &references[*c];
        let got = manager
            .final_potentials(*id)
            .unwrap_or_else(|| panic!("session {id} kept no final potentials"));
        assert_eq!(
            got.len(),
            ref_potentials.len(),
            "grid size mismatch for {}",
            spec.name
        );
        // Bit-level comparison: f64 bits, not approximate equality.
        for (i, (a, b)) in got.iter().zip(ref_potentials).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "session {id} ({}): potentials differ at cell {i}: {a} vs {b}",
                spec.name
            );
        }
        let snapshot = manager.board_snapshot(*id).expect("board snapshot");
        assert_eq!(snapshot.steps_completed, STEPS);
        assert_eq!(
            snapshot.totals.fallback_cells, *ref_fallback,
            "fallback totals differ for {}",
            spec.name
        );
        assert_eq!(
            snapshot.totals.launches, *ref_launches,
            "launch totals differ for {}",
            spec.name
        );
    }

    manager.shutdown();
}
