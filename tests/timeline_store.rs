//! The telemetry timeline store, end to end: in-process recording
//! exactness across every kernel × backend combination, then the serving
//! surfaces (`/timeline`, `/sessions/{id}/timeline`) over real sockets,
//! per-session history GC on `DELETE`, and the SSE keep-alive heartbeat.
//!
//! Pins the timeline acceptance contract (DESIGN.md §16):
//!
//! * counter series are **exact**: the sum of a series' deltas equals the
//!   registry total bit-for-bit, for all three kernels on both backends;
//! * histogram quantile series (`.p50`/`.p99`/`.max`) track the registry
//!   snapshot's own quantiles;
//! * `/timeline` aggregations agree with a `/metrics` scrape of the same
//!   counter; malformed queries answer structured 400s, unknown metrics
//!   404, and a deleted session's timeline is gone (404 + empty store);
//! * an idle `/events` stream emits `: keep-alive` SSE comments and no
//!   `step` events — heartbeats must never be counted as steps.
//!
//! Kept to a single `#[test]` because the obs registry — and with it the
//! timeline store — is process-global.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{
    BackendKind, KernelKind, SessionManager, SessionManagerConfig, SessionState, Simulation,
    SimulationConfig, StatusBoard,
};
use beamdyn::obs;
use beamdyn::obs::timeline;
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::serve::{MonitorServer, ServeConfig, ServeContext};
use beamdyn::simt::DeviceConfig;
use beamdyn_bench::json;
use beamdyn_bench::scrape::{http_delete, http_get, http_post, parse_exposition};

const STEPS: usize = 4;

fn poll_until(what: &str, deadline: Duration, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while !check() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Runs a short simulation and asserts the global timeline reconstructs
/// the registry exactly: counter delta sums equal counter totals, and the
/// histogram quantile series' last samples equal the snapshot quantiles.
fn assert_exact_reconstruction(kernel: KernelKind, backend: BackendKind) {
    obs::reset();
    let pool = ThreadPool::new(2);
    let device = DeviceConfig::tesla_k40();
    let kappa = 2;
    let mut config = SimulationConfig::standard(GridGeometry::unit(16, 16), kernel);
    config.backend = backend;
    config.rp = RpConfig {
        kappa,
        dt: 0.35 / kappa as f64,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.42,
        support_y: 0.09,
        center: (0.4, 0.5),
    };
    let bunch = GaussianBunch {
        sigma_x: 0.12,
        sigma_y: 0.03,
        center_x: 0.4,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.2,
        chirp: 0.0,
    };
    let mut sim = Simulation::new(&pool, &device, config, bunch.sample(2_000, 42));
    assert_eq!(sim.backend_name(), backend.name());
    for _ in 0..STEPS {
        sim.run_step();
    }

    let combo = format!("{}/{}", sim.kernel_name(), backend.name());
    let snap = obs::snapshot();
    let mut nonzero = 0usize;
    for c in &snap.counters {
        // The store cannot observe its own recording act: `timeline.*`
        // meta-counters advance *during* the flush that samples them, so
        // their series lag the registry by one flush. Everything else must
        // reconstruct exactly.
        if c.name.starts_with("timeline.") {
            continue;
        }
        let reconstructed = timeline::reconstructed_counter_total(None, c.name).unwrap_or(0.0);
        assert_eq!(
            reconstructed, c.value as f64,
            "[{combo}] counter {} must reconstruct exactly from its deltas",
            c.name
        );
        if c.value > 0 {
            nonzero += 1;
        }
    }
    assert!(
        nonzero >= 3,
        "[{combo}] the run must have exercised real counters"
    );
    let mut hists = 0usize;
    for (name, hist) in &snap.histograms {
        if hist.count() == 0 {
            continue;
        }
        hists += 1;
        for (suffix, want) in [
            ("p50", hist.p50()),
            ("p99", hist.p99()),
            ("max", hist.max().unwrap_or(0.0)),
        ] {
            let series_name = format!("{name}.{suffix}");
            let s = timeline::series(None, &series_name, 0)
                .unwrap_or_else(|| panic!("[{combo}] {series_name} has no timeline"));
            assert_eq!(
                s.samples.last().map(|x| x.value),
                Some(want),
                "[{combo}] {series_name} must track the snapshot quantile"
            );
        }
    }
    assert!(hists >= 1, "[{combo}] at least one histogram recorded");
}

/// Reads an idle SSE stream raw (no comment-skipping) for `window` and
/// returns everything received after the response headers.
fn read_sse_raw(addr: &str, window: Duration) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect SSE");
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("read timeout");
    write!(
        stream,
        "GET /events HTTP/1.1\r\nHost: {addr}\r\nAccept: text/event-stream\r\n\r\n"
    )
    .expect("write request");
    let mut raw = Vec::new();
    let deadline = Instant::now() + window;
    let mut buf = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => panic!("SSE read failed: {e}"),
        }
    }
    let text = String::from_utf8_lossy(&raw).into_owned();
    text.split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(text)
}

#[test]
fn timeline_reconstructs_serves_and_gcs_history() {
    obs::uninstall_all();

    // --- Phase A: recording exactness, all kernels × both backends.
    for kernel in [
        KernelKind::TwoPhase,
        KernelKind::Heuristic,
        KernelKind::Predictive,
    ] {
        for backend in [BackendKind::TracedSimt, BackendKind::NativeFast] {
            assert_exact_reconstruction(kernel, backend);
        }
    }

    // --- Phase B: the serving surfaces, against a live session fleet.
    obs::reset();
    let manager = SessionManager::start(SessionManagerConfig {
        threads: 2,
        step_workers: 1,
        slots: 2,
        default_backend: BackendKind::TracedSimt,
        device: DeviceConfig::tesla_k40(),
        ..SessionManagerConfig::default()
    });
    let server = MonitorServer::start(
        ServeConfig::default(),
        ServeContext {
            status: StatusBoard::new("predictive", "traced-simt"),
            events: obs::BroadcastSink::new(),
            ready: Arc::new(AtomicBool::new(true)),
            sessions: Some(Arc::clone(&manager)),
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let (code, body) = http_post(
        &addr,
        "/sessions",
        &format!(r#"{{"name":"timeline-drill","resolution":8,"particles":400,"steps":{STEPS}}}"#),
    )
    .expect("POST session");
    assert_eq!(code, 201, "{body}");
    let id = json::parse(&body)
        .expect("201 JSON")
        .get("id")
        .and_then(|v| v.as_f64())
        .expect("id") as u64;
    poll_until("session finished", Duration::from_secs(60), || {
        manager.state(id) == Some(SessionState::Done)
    });

    // Global listing: the run populated real series.
    let (code, body) = http_get(&addr, "/timeline").expect("GET /timeline");
    assert_eq!(code, 200, "{body}");
    let listing = json::parse(&body).expect("/timeline is JSON");
    let metrics = listing
        .get("metrics")
        .and_then(|v| v.as_array())
        .expect("metrics array");
    assert!(!metrics.is_empty(), "global timeline must have series");
    let has = |name: &str| metrics.iter().any(|m| m.as_str() == Some(name));
    assert!(has("sessions.completed"), "{body}");

    // Aggregation consistency: the sum of a counter's timeline deltas
    // (agg=raw, full window) must equal the /metrics scrape of the same
    // counter, exactly.
    let (code, text) = http_get(&addr, "/metrics").expect("GET /metrics");
    assert_eq!(code, 200);
    let exposition = parse_exposition(&text).expect("valid exposition");
    let scraped = exposition
        .value("beamdyn_sessions_completed_total")
        .expect("sessions.completed exposed");
    let (code, body) =
        http_get(&addr, "/timeline?metric=sessions.completed&agg=raw").expect("GET counter series");
    assert_eq!(code, 200, "{body}");
    let doc = json::parse(&body).expect("series JSON");
    assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("counter"));
    let delta_sum: f64 = doc
        .get("samples")
        .and_then(|v| v.as_array())
        .expect("samples")
        .iter()
        .map(|s| s.get("value").and_then(|v| v.as_f64()).expect("value"))
        .sum();
    assert_eq!(
        delta_sum, scraped,
        "/timeline deltas must sum to the /metrics total"
    );
    // The windowed max of a counter series is its largest single delta —
    // bounded by the total; mean over one sample of a fresh counter is the
    // total itself. Spot-check agg plumbing returns a value.
    let (code, body) =
        http_get(&addr, "/timeline?metric=sessions.completed&agg=max").expect("GET agg=max");
    assert_eq!(code, 200, "{body}");
    let max_doc = json::parse(&body).expect("agg JSON");
    let max_delta = max_doc
        .get("value")
        .and_then(|v| v.as_f64())
        .expect("max aggregation value");
    assert!(max_delta <= scraped && max_delta > 0.0, "{body}");

    // Malformed queries are structured 400s; unknown metrics are 404s.
    let (code, body) = http_get(&addr, "/timeline?metric=x&agg=bogus").expect("bad agg");
    assert_eq!(code, 400, "{body}");
    assert!(body.contains("\"accepted\""), "{body}");
    let (code, body) = http_get(&addr, "/timeline?window=many").expect("bad window");
    assert_eq!(code, 400, "{body}");
    let (code, body) = http_get(&addr, "/timeline?metric=no.such.metric").expect("unknown metric");
    assert_eq!(code, 404, "{body}");
    let (code, body) = http_get(&addr, "/timeline?bogus=1").expect("unknown param");
    assert_eq!(code, 400, "{body}");

    // Per-session history: scoped series exist while the session does,
    // and the scoped delta sum equals the session-labelled /metrics value.
    let (code, body) =
        http_get(&addr, &format!("/sessions/{id}/timeline")).expect("GET session timeline");
    assert_eq!(code, 200, "{body}");
    let listing = json::parse(&body).expect("session listing JSON");
    assert!(
        listing
            .get("metrics")
            .and_then(|v| v.as_array())
            .is_some_and(|m| m.iter().any(|x| x.as_str() == Some("session.steps"))),
        "session timeline must list session.steps: {body}"
    );
    let scoped_steps = exposition
        .labelled("beamdyn_session_steps_total", "session", &id.to_string())
        .expect("scoped steps on /metrics");
    assert_eq!(scoped_steps, STEPS as f64);
    let (code, body) = http_get(
        &addr,
        &format!("/sessions/{id}/timeline?metric=session.steps&agg=rate"),
    )
    .expect("GET scoped series");
    assert_eq!(code, 200, "{body}");
    let doc = json::parse(&body).expect("scoped series JSON");
    assert_eq!(
        doc.get("scope").and_then(|v| v.as_str()),
        Some(id.to_string().as_str())
    );
    let scoped_sum: f64 = doc
        .get("samples")
        .and_then(|v| v.as_array())
        .expect("samples")
        .iter()
        .map(|s| s.get("value").and_then(|v| v.as_f64()).expect("value"))
        .sum();
    assert_eq!(
        scoped_sum, scoped_steps,
        "scoped timeline must reconstruct the scoped counter"
    );
    assert_eq!(
        http_get(&addr, "/sessions/999/timeline")
            .expect("unknown id")
            .0,
        404
    );

    // --- GC: deleting the session deletes its history, store and route.
    assert_eq!(
        http_delete(&addr, &format!("/sessions/{id}"))
            .expect("DELETE")
            .0,
        200
    );
    poll_until("scoped timeline GC'd", Duration::from_secs(10), || {
        timeline::series(Some(&id.to_string()), "session.steps", 0).is_none()
    });
    assert_eq!(
        http_get(&addr, &format!("/sessions/{id}/timeline"))
            .expect("GET deleted timeline")
            .0,
        404,
        "a deleted session's timeline route must 404"
    );

    // --- Phase C: idle /events streams heartbeat with SSE comments, and
    // those heartbeats are never step events.
    let body = read_sse_raw(&addr, Duration::from_millis(700));
    assert!(
        body.contains(": keep-alive"),
        "idle /events must heartbeat with SSE comments: {body:?}"
    );
    assert!(
        !body.contains("event: step"),
        "an idle stream must emit no step events: {body:?}"
    );

    server.shutdown();
    server.join();
    manager.shutdown();
    obs::uninstall_all();
}
