//! Acceptance tests for the prediction-quality diagnostics: the histograms
//! the kernels record must be queryable through the obs layer, ordered, and
//! in exact agreement with the telemetry they mirror.
//!
//! The obs registry is process-global, so every test takes the `SERIAL`
//! lock and resets the registry before measuring.

use std::sync::{Mutex, MutexGuard};

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{KernelKind, Simulation, SimulationConfig};
use beamdyn::obs;
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::simt::DeviceConfig;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn config(kernel: KernelKind) -> SimulationConfig {
    let mut cfg = SimulationConfig::standard(GridGeometry::unit(16, 16), kernel);
    cfg.rp = RpConfig {
        kappa: 4,
        dt: 0.08,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.25,
        support_y: 0.12,
        center: (0.5, 0.5),
    };
    cfg.tolerance = 1e-4;
    cfg
}

fn bunch() -> GaussianBunch {
    GaussianBunch {
        sigma_x: 0.11,
        sigma_y: 0.09,
        center_x: 0.5,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.05,
        chirp: 0.0,
    }
}

fn run(kernel: KernelKind, steps: usize) -> Vec<beamdyn::core::StepTelemetry> {
    let pool = ThreadPool::new(2);
    let device = DeviceConfig::test_tiny();
    let mut sim = Simulation::new(&pool, &device, config(kernel), bunch().sample(8000, 3));
    sim.run(steps)
}

/// The ISSUE's acceptance check: after a 5-step Predictive run, a Recorder
/// must expose ordered quantiles for `predict.abs_error` and
/// `cluster.fallback_frac` via its step flushes.
#[test]
fn recorder_exposes_prediction_quality_quantiles() {
    let _guard = serial();
    obs::reset();
    obs::uninstall_all();
    let recorder = obs::Recorder::new();
    obs::install(recorder.clone());
    run(KernelKind::Predictive, 5);
    obs::uninstall_all();

    for name in ["predict.abs_error", "cluster.fallback_frac"] {
        let h = recorder
            .histogram(name)
            .unwrap_or_else(|| panic!("{name} missing from step flushes"));
        assert!(h.count() > 0, "{name} recorded no values");
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        let max = h.max().expect("non-empty");
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= max,
            "{name}: p50 {p50} p90 {p90} p99 {p99} max {max}"
        );
        assert!(max.is_finite(), "{name}: max must be finite");
    }

    // The stage-latency histograms ride the same flushes: one sample per
    // step per stage.
    for stage in [
        "stage.deposit_ns",
        "stage.potentials_ns",
        "stage.gather_push_ns",
        "stage.step_ns",
    ] {
        let h = recorder
            .histogram(stage)
            .unwrap_or_else(|| panic!("{stage} missing"));
        assert_eq!(h.count(), 5, "{stage}: one sample per step");
        assert!(h.min().unwrap() > 0.0, "{stage}: stages take nonzero time");
    }
}

/// The per-group `cluster.fallback_cells` histogram must account for the
/// *entire* fallback volume: its running sum equals the telemetry's summed
/// `fallback_cells` exactly (integer-valued f64 sums are exact), for all
/// three kernels.
#[test]
fn group_fallback_cells_sum_to_telemetry_for_all_kernels() {
    let _guard = serial();
    for kernel in [
        KernelKind::TwoPhase,
        KernelKind::Heuristic,
        KernelKind::Predictive,
    ] {
        obs::reset();
        let telemetry = run(kernel, 5);
        let telemetry_fb: f64 = telemetry
            .iter()
            .map(|t| t.potentials.fallback_cells as f64)
            .sum();
        let h = obs::histogram_snapshot("cluster.fallback_cells")
            .unwrap_or_else(|| panic!("{kernel:?}: cluster.fallback_cells missing"));
        assert!(h.count() > 0, "{kernel:?}: no groups recorded");
        assert_eq!(
            h.sum(),
            telemetry_fb,
            "{kernel:?}: per-group fallback cells must sum to the telemetry total"
        );
    }
}

/// Diagnostic ranges that hold by construction: a fallback fraction is a
/// fraction, and a τ-miss is a miss (error strictly above tolerance).
#[test]
fn diagnostic_histograms_stay_in_range() {
    let _guard = serial();
    obs::reset();
    run(KernelKind::Predictive, 5);

    let frac = obs::histogram_snapshot("cluster.fallback_frac").expect("recorded");
    assert!(frac.count() > 0);
    assert!(
        frac.max().unwrap() <= 1.0,
        "fallback fraction cannot exceed 1: {}",
        frac.max().unwrap()
    );
    assert!(frac.min().unwrap() >= 0.0);

    if let Some(tau) = obs::histogram_snapshot("predict.tau_miss_depth") {
        if tau.count() > 0 {
            assert!(
                tau.min().unwrap() >= 1.0,
                "a failed cell's error exceeds its tolerance by definition: min {}",
                tau.min().unwrap()
            );
        }
    }

    // Retraining happened (5 steps, trains every step after the first), so
    // drift between consecutive steps was recorded.
    let drift = obs::histogram_snapshot("predict.retrain_drift").expect("recorded");
    assert!(drift.count() > 0, "drift recorded after retraining");
    assert!(drift.min().unwrap() >= 0.0);

    // And the quality report renders the series without panicking.
    let report = beamdyn::core::report::render_counters();
    assert!(report.contains("cluster.fallback_frac"), "{report}");
    assert!(report.contains("-- histograms --"));
}

/// `report::quality_rows` turns recorded flushes into a per-step series the
/// harness tables can print.
#[test]
fn quality_rows_follow_step_flushes() {
    let _guard = serial();
    obs::reset();
    obs::uninstall_all();
    let recorder = obs::Recorder::new();
    obs::install(recorder.clone());
    run(KernelKind::Predictive, 4);
    obs::uninstall_all();

    let flushes = recorder.step_flushes();
    let rows = beamdyn::core::report::quality_rows(&flushes);
    assert_eq!(rows.len(), 4);
    assert_eq!(rows.last().unwrap().step, 3);
    // Cumulative counters never decrease step over step.
    for pair in rows.windows(2) {
        assert!(pair[1].fallback_cells >= pair[0].fallback_cells);
    }
    // After warm-up the predictor forecasts, so the quality metrics are live.
    assert!(rows.last().unwrap().fallback_frac_p90 >= 0.0);
    let rendered = beamdyn::core::report::render_quality(&flushes);
    assert!(rendered.lines().count() == 5, "{rendered}");
}
