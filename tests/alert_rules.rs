//! Spec-driven alert rules + webhook push, end to end in one process: a
//! real [`SessionManager`] whose watchdog evaluates rules loaded from a
//! declarative JSON spec (not the built-ins), pushing firing→resolved
//! transitions to a local `std::net` webhook sink.
//!
//! Pins the rules/webhook acceptance contract (DESIGN.md §16):
//!
//! * a rules file with a custom-named `session_stalled` rule (and its own
//!   `deadline_ms` override) reproduces the PR 8 stall drill — same
//!   firing→resolved lifecycle, same 503→200 `/healthz` edges — under the
//!   spec's alert name, with the built-in names nowhere in sight;
//! * a generic `metric_threshold` rule fires from windowed timeline
//!   history (`sessions.queued`, `agg=max`) and resolves when the window
//!   clears;
//! * every transition is POSTed to the webhook sink as JSON carrying a
//!   timeline excerpt of the triggering metric, and delivery never fails
//!   (`webhook.failed == 0`) nor drops transitions.
//!
//! The drill is a single `#[test]` because the obs registry — and with it
//! the alert registry and timeline — is process-global; the shipped
//! `examples/alert_rules.json` parse check below is registry-free, so it
//! can ride alongside.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use beamdyn::core::{
    BackendKind, HealthConfig, SessionManager, SessionManagerConfig, SessionState, StatusBoard,
};
use beamdyn::obs;
use beamdyn::serve::{parse_rules, MonitorServer, ServeConfig, ServeContext};
use beamdyn::simt::DeviceConfig;
use beamdyn_bench::json;
use beamdyn_bench::scrape::{firing_alert_names, http_delete, http_get, http_post};

const RULES: &str = r#"{
  "rules": [
    {"type": "session_stalled", "name": "drill.stalled", "severity": "critical", "deadline_ms": 300},
    {"type": "queue_backlog", "name": "drill.backlog", "severity": "warning",
     "fire_fraction": 0.75, "resolve_fraction": 0.5},
    {"type": "metric_threshold", "name": "drill.queued", "severity": "warning",
     "metric": "sessions.queued", "agg": "max", "window": 1, "op": "ge", "value": 1}
  ]
}"#;

fn poll_until(what: &str, deadline: Duration, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while !check() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn firing(addr: &str) -> Vec<String> {
    let (code, body) = http_get(addr, "/alerts").expect("GET /alerts");
    assert_eq!(code, 200, "{body}");
    firing_alert_names(&body)
}

/// A minimal webhook receiver: accepts POSTs, records each body, answers
/// `200 OK`. Nonblocking accept so the thread can exit on the stop flag.
struct WebhookSink {
    addr: String,
    bodies: Arc<Mutex<Vec<String>>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl WebhookSink {
    fn start() -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind webhook sink");
        let addr = listener.local_addr().expect("sink addr").to_string();
        listener.set_nonblocking(true).expect("nonblocking");
        let bodies = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let bodies = Arc::clone(&bodies);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            stream
                                .set_read_timeout(Some(Duration::from_secs(2)))
                                .expect("read timeout");
                            let mut raw = Vec::new();
                            let mut buf = [0u8; 4096];
                            // The notifier sends `Connection: close` and
                            // waits for the status line, so read until the
                            // full Content-Length body has arrived.
                            loop {
                                match stream.read(&mut buf) {
                                    Ok(0) => break,
                                    Ok(n) => {
                                        raw.extend_from_slice(&buf[..n]);
                                        let text = String::from_utf8_lossy(&raw);
                                        if let Some((head, body)) = text.split_once("\r\n\r\n") {
                                            let want: usize = head
                                                .lines()
                                                .find_map(|l| {
                                                    l.to_ascii_lowercase()
                                                        .strip_prefix("content-length:")
                                                        .map(|v| v.trim().parse().unwrap_or(0))
                                                })
                                                .unwrap_or(0);
                                            if body.len() >= want {
                                                break;
                                            }
                                        }
                                    }
                                    Err(_) => break,
                                }
                            }
                            let text = String::from_utf8_lossy(&raw);
                            if let Some((_, body)) = text.split_once("\r\n\r\n") {
                                bodies.lock().unwrap().push(body.to_string());
                            }
                            let _ = stream.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Self {
            addr,
            bodies,
            stop,
            thread: Some(thread),
        }
    }

    fn bodies(&self) -> Vec<String> {
        self.bodies.lock().unwrap().clone()
    }

    fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The rules file shipped in `examples/` (the README's `--alert-rules`
/// starting point) must stay valid, keep the built-in rule set, and carry
/// the step-time watchdog: a `metric_threshold` rule over the windowed
/// `stage.step_ns.p99` timeline series with a lower resolve threshold
/// (hysteresis).
#[test]
fn shipped_example_rules_parse() {
    let text = include_str!("../examples/alert_rules.json");
    let rules = parse_rules(text).expect("examples/alert_rules.json parses");
    let step = rules
        .rule("step.p99.slow")
        .expect("step-time p99 rule present");
    match &step.kind {
        beamdyn::core::health::RuleKind::Metric(m) => {
            assert_eq!(m.metric, "stage.step_ns.p99");
            assert!(m.window >= 1);
            assert!(
                m.resolve_value < m.value,
                "resolve threshold must sit below the firing threshold"
            );
        }
        other => panic!("step.p99.slow must be a metric_threshold rule, got {other:?}"),
    }
    for built_in in [
        "session_stalled",
        "queue_backlog",
        "pool_exhausted",
        "slo_step_p99",
        "admission_saturated",
    ] {
        assert!(
            rules.rules.iter().any(|r| r.kind.type_name() == built_in),
            "example must keep the built-in {built_in} rule"
        );
    }
    assert_eq!(rules.rules.len(), 6, "five built-ins plus the p99 watchdog");
}

#[test]
fn spec_rules_reproduce_the_stall_drill_and_push_webhooks() {
    obs::uninstall_all();
    obs::reset();

    let rules = parse_rules(RULES).expect("drill rules parse");
    assert!(rules.rule("drill.stalled").is_some());
    let sink = WebhookSink::start();

    // One step worker, one slot: the stalled session wedges the stepping
    // plane; a queued filler drives `sessions.queued` (the metric rule).
    // The config-level deadline floor is generous — the *rule's*
    // `deadline_ms: 300` must be what trips the drill.
    let manager = SessionManager::start(SessionManagerConfig {
        threads: 2,
        step_workers: 1,
        slots: 1,
        default_backend: BackendKind::TracedSimt,
        device: DeviceConfig::tesla_k40(),
        health: HealthConfig {
            stall_deadline: Duration::from_secs(60),
            rules,
            webhooks: vec![format!("http://{}/hook", sink.addr)],
            ..HealthConfig::default()
        },
        ..SessionManagerConfig::default()
    });
    let server = MonitorServer::start(
        ServeConfig::default(),
        ServeContext {
            status: StatusBoard::new("predictive", "traced-simt"),
            events: obs::BroadcastSink::new(),
            ready: Arc::new(AtomicBool::new(true)),
            sessions: Some(Arc::clone(&manager)),
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    assert_eq!(http_get(&addr, "/healthz").expect("healthz").0, 200);
    assert!(firing(&addr).is_empty());

    // The stall, plus one queued filler to move `sessions.queued`.
    let (code, body) = http_post(
        &addr,
        "/sessions",
        r#"{"name":"stall-drill","resolution":8,"particles":400,"steps":3,"step_delay_ms":5000}"#,
    )
    .expect("POST stall session");
    assert_eq!(code, 201, "{body}");
    let stall_id = json::parse(&body)
        .expect("201 JSON")
        .get("id")
        .and_then(|v| v.as_f64())
        .expect("id") as u64;
    poll_until("stall session admitted", Duration::from_secs(30), || {
        manager.state(stall_id) == Some(SessionState::Running)
    });
    let (code, body) = http_post(
        &addr,
        "/sessions",
        r#"{"name":"filler","resolution":8,"particles":400,"steps":1}"#,
    )
    .expect("POST filler");
    assert_eq!(code, 201, "{body}");

    // The spec's names fire — and only the spec's names.
    let stalled = format!("drill.stalled@{stall_id}");
    poll_until(&stalled, Duration::from_secs(20), || {
        firing(&addr).contains(&stalled)
    });
    poll_until("drill.queued fires", Duration::from_secs(20), || {
        firing(&addr).iter().any(|a| a == "drill.queued")
    });
    assert!(
        firing(&addr).iter().all(|a| a.starts_with("drill.")),
        "built-in alert names must be fully replaced: {:?}",
        firing(&addr)
    );
    let (code, body) = http_get(&addr, "/healthz").expect("healthz while stalled");
    assert_eq!(
        code, 503,
        "the spec's critical rule must degrade /healthz: {body}"
    );

    // The firing transition reached the webhook sink, timeline excerpt
    // attached (the stall rule's excerpt metric is the step-latency p99).
    poll_until("firing webhook delivered", Duration::from_secs(20), || {
        sink.bodies().iter().any(|b| {
            b.contains("\"transition\":\"firing\"")
                && b.contains("\"name\":\"drill.stalled\"")
                && b.contains("\"timeline\":{")
        })
    });
    let payload = sink
        .bodies()
        .into_iter()
        .find(|b| b.contains("\"transition\":\"firing\"") && b.contains("drill.stalled"))
        .expect("firing payload");
    let parsed = json::parse(&payload).expect("webhook payload is JSON");
    assert_eq!(parsed.get("type").and_then(|v| v.as_str()), Some("alert"));
    assert!(
        parsed
            .get("timeline")
            .and_then(|t| t.get("samples"))
            .and_then(|s| s.as_array())
            .is_some_and(|s| !s.is_empty()),
        "excerpt must carry samples: {payload}"
    );

    // Recovery: evict the wedge; the filler drains, every rule resolves,
    // and the resolved transitions reach the sink too.
    assert_eq!(
        http_delete(&addr, &format!("/sessions/{stall_id}"))
            .expect("DELETE stall")
            .0,
        200
    );
    poll_until("all alerts resolved", Duration::from_secs(60), || {
        firing(&addr).is_empty()
    });
    poll_until("/healthz recovered", Duration::from_secs(10), || {
        http_get(&addr, "/healthz").expect("healthz").0 == 200
    });
    poll_until(
        "resolved webhook delivered",
        Duration::from_secs(20),
        || {
            sink.bodies()
                .iter()
                .any(|b| b.contains("\"transition\":\"resolved\"") && b.contains("drill.stalled"))
        },
    );
    assert!(
        manager.wait_idle(Duration::from_secs(60)),
        "filler never drained after the stall was evicted"
    );

    // Delivery accounting: everything delivered, nothing failed or lost.
    manager.shutdown();
    assert!(obs::counter_value("webhook.delivered").unwrap_or(0) >= 2);
    assert_eq!(obs::counter_value("webhook.failed").unwrap_or(0), 0);
    assert_eq!(obs::flight::transitions_dropped(), 0);

    server.shutdown();
    server.join();
    sink.shutdown();
    obs::uninstall_all();
}
