//! Cross-crate accounting invariants: the SIMT trace must agree with the
//! numerical work the kernels actually perform.

use beamdyn::beam::{GaussianBunch, GridRp, NullSink, RpConfig, TapSink};
use beamdyn::par::ThreadPool;
use beamdyn::pic::{deposit_cic, DepositSample, GridGeometry, GridHistory, MomentGrid};

struct CountingSink {
    taps: u64,
    flops: u64,
}

impl TapSink for CountingSink {
    fn tap(&mut self, _s: usize, _c: usize, _ix: usize, _iy: usize) {
        self.taps += 1;
    }
    fn flops(&mut self, n: u32) {
        self.flops += n as u64;
    }
}

/// Records the exact op stream, order included.
#[derive(Default, PartialEq, Debug)]
struct StreamSink {
    ops: Vec<(usize, usize, usize, usize)>,
    flops: Vec<u32>,
}

impl TapSink for StreamSink {
    fn tap(&mut self, s: usize, c: usize, ix: usize, iy: usize) {
        self.ops.push((s, c, ix, iy));
    }
    fn flops(&mut self, n: u32) {
        self.flops.push(n);
    }
}

fn history(pool: &ThreadPool, g: GridGeometry, steps: usize) -> GridHistory {
    let bunch = GaussianBunch {
        center_x: 0.5,
        center_y: 0.5,
        ..GaussianBunch::centered(0.12, 0.06)
    };
    let beam = bunch.sample(20_000, 17);
    let samples: Vec<DepositSample> = beam
        .particles
        .iter()
        .map(|p| DepositSample {
            x: p.x,
            y: p.y,
            weight: p.weight,
            vx: p.vx,
            vy: p.vy,
        })
        .collect();
    let mut h = GridHistory::new(g, steps + 2);
    for k in 0..steps {
        let mut grid = MomentGrid::zeros(g);
        deposit_cic(pool, &mut grid, &samples);
        h.push(k, grid);
    }
    h
}

#[test]
fn tap_count_matches_stencil_arithmetic() {
    let pool = ThreadPool::new(2);
    let g = GridGeometry::unit(20, 20);
    let h = history(&pool, g, 5);
    let cfg = RpConfig::standard(4, 0.08);
    let rp = GridRp::new(&h, cfg, 4);
    let mut sink = CountingSink { taps: 0, flops: 0 };
    rp.eval(0.5, 0.5, 0.1, &mut sink);
    // inner_points = 3 → 2 distinct angles; β ≠ 0 → 3 components × 27 taps.
    assert_eq!(sink.taps, 2 * 3 * 27);
    assert!(sink.flops > 0);
}

#[test]
fn sink_identity_does_not_change_the_value() {
    // The tracing hook must be purely observational: evaluating with the
    // counting sink and with the null sink gives bit-identical values.
    let pool = ThreadPool::new(2);
    let g = GridGeometry::unit(20, 20);
    let h = history(&pool, g, 5);
    let cfg = RpConfig::standard(4, 0.08);
    let rp = GridRp::new(&h, cfg, 4);
    for &(x, y, r) in &[(0.5, 0.5, 0.05), (0.4, 0.6, 0.21), (0.7, 0.3, 0.3)] {
        let mut counting = CountingSink { taps: 0, flops: 0 };
        let a = rp.eval(x, y, r, &mut counting);
        let b = rp.eval(x, y, r, &mut NullSink);
        assert_eq!(a.to_bits(), b.to_bits(), "at ({x},{y},{r})");
    }
}

#[test]
fn charge_replays_the_exact_eval_op_stream() {
    // `GridRp::charge` is the replay half of the sample-reuse contract: it
    // must emit the *identical* tap/flop sequence `eval` emits — order
    // included, since cache-state evolution depends on access order — while
    // skipping the host arithmetic.
    let pool = ThreadPool::new(2);
    let g = GridGeometry::unit(20, 20);
    let h = history(&pool, g, 5);
    let cfg = RpConfig::standard(4, 0.08);
    let rp = GridRp::new(&h, cfg, 4);
    for &(x, y, r) in &[
        (0.5, 0.5, 0.05),
        (0.5, 0.5, 0.0),
        (0.4, 0.6, 0.21),
        (0.7, 0.3, 0.3),
        (0.05, 0.95, 0.15), // off-support: both must emit nothing
    ] {
        let mut evaled = StreamSink::default();
        rp.eval(x, y, r, &mut evaled);
        let mut charged = StreamSink::default();
        rp.charge(x, y, r, &mut charged);
        assert_eq!(evaled, charged, "op streams diverge at ({x},{y},{r})");
    }
}

#[test]
fn flop_count_scales_linearly_with_evaluations() {
    let pool = ThreadPool::new(2);
    let g = GridGeometry::unit(20, 20);
    let h = history(&pool, g, 5);
    let cfg = RpConfig::standard(4, 0.08);
    let rp = GridRp::new(&h, cfg, 4);
    let mut one = CountingSink { taps: 0, flops: 0 };
    rp.eval(0.5, 0.5, 0.1, &mut one);
    let mut ten = CountingSink { taps: 0, flops: 0 };
    for _ in 0..10 {
        rp.eval(0.5, 0.5, 0.1, &mut ten);
    }
    assert_eq!(ten.taps, 10 * one.taps);
    assert_eq!(ten.flops, 10 * one.flops);
}
