//! Accounting tests for the observability layer: the span hierarchy must
//! explain where a step's wall clock goes, and the registry counters must
//! agree with the telemetry the kernels return.
//!
//! The obs registry is process-global, so every test here takes the
//! `SERIAL` lock and resets the registry before measuring.

use std::sync::{Mutex, MutexGuard};

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{KernelKind, Simulation, SimulationConfig};
use beamdyn::obs;
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::simt::DeviceConfig;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn config(kernel: KernelKind) -> SimulationConfig {
    let mut cfg = SimulationConfig::standard(GridGeometry::unit(16, 16), kernel);
    cfg.rp = RpConfig {
        kappa: 4,
        dt: 0.08,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.25,
        support_y: 0.12,
        center: (0.5, 0.5),
    };
    cfg.tolerance = 1e-4;
    cfg
}

fn bunch() -> GaussianBunch {
    GaussianBunch {
        sigma_x: 0.11,
        sigma_y: 0.09,
        center_x: 0.5,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.05,
        chirp: 0.0,
    }
}

fn run(kernel: KernelKind, steps: usize) -> Vec<beamdyn::core::StepTelemetry> {
    let pool = ThreadPool::new(2);
    let device = DeviceConfig::test_tiny();
    let mut sim = Simulation::new(&pool, &device, config(kernel), bunch().sample(8000, 3));
    sim.run(steps)
}

/// The paper-stage spans (deposit / potentials / gather_push / commit) are
/// the direct children of `step` and must account for its wall clock: over
/// a 5-step run, the sum of child span totals stays within 5 % of the step
/// span total (the uncovered slivers are the centroid update and a couple
/// of field moves).
#[test]
fn stage_spans_sum_to_step_wall_time_within_five_percent() {
    let _guard = serial();
    obs::reset();
    let steps = 5;
    run(KernelKind::Predictive, steps);

    let snap = obs::snapshot();
    let step = snap.span("step").expect("step span recorded");
    assert_eq!(step.count, steps as u64);
    let children = snap.children_total_ns("step");
    assert!(
        children <= step.total_ns,
        "children cannot exceed the parent"
    );
    let uncovered = step.total_ns - children;
    assert!(
        (uncovered as f64) < 0.05 * step.total_ns as f64,
        "stage spans cover only {} of {} ns ({:.2}% missing)",
        children,
        step.total_ns,
        100.0 * uncovered as f64 / step.total_ns as f64
    );
}

/// Predictive-RP's sub-stage spans (cluster / train / main_pass) appear
/// under `step/potentials`, nested by the thread-local span stack, and the
/// telemetry durations are exactly the span totals (single source of truth).
#[test]
fn predictive_substages_record_under_potentials() {
    let _guard = serial();
    obs::reset();
    let steps = 5;
    let telemetry = run(KernelKind::Predictive, steps);

    let snap = obs::snapshot();
    for path in [
        "step/deposit",
        "step/potentials",
        "step/potentials/cluster",
        "step/potentials/train",
        "step/potentials/main_pass",
        "step/gather_push",
    ] {
        let stat = snap
            .span(path)
            .unwrap_or_else(|| panic!("missing span {path}"));
        assert_eq!(stat.count, steps as u64, "span {path} fired once per step");
    }
    let cluster_total: u64 = telemetry
        .iter()
        .map(|t| t.potentials.clustering_time.as_nanos() as u64)
        .sum();
    assert_eq!(
        cluster_total,
        snap.span("step/potentials/cluster").unwrap().total_ns,
        "telemetry clustering_time is read back from the span"
    );
    let train_total: u64 = telemetry
        .iter()
        .map(|t| t.potentials.training_time.as_nanos() as u64)
        .sum();
    assert_eq!(
        train_total,
        snap.span("step/potentials/train").unwrap().total_ns,
        "telemetry training_time is read back from the span"
    );
}

/// `kernels.fallback_cells` accumulates exactly the fallback volume the
/// telemetry reports, for every kernel; same for launch counts.
#[test]
fn fallback_counter_agrees_with_telemetry_for_all_kernels() {
    let _guard = serial();
    for kernel in [
        KernelKind::TwoPhase,
        KernelKind::Heuristic,
        KernelKind::Predictive,
    ] {
        obs::reset();
        let telemetry = run(kernel, 5);
        let telemetry_fb: u64 = telemetry
            .iter()
            .map(|t| t.potentials.fallback_cells as u64)
            .sum();
        let telemetry_launches: u64 = telemetry.iter().map(|t| t.potentials.launches as u64).sum();
        assert_eq!(
            obs::counter_value("kernels.fallback_cells"),
            Some(telemetry_fb),
            "{kernel:?}: fallback_cells counter"
        );
        assert_eq!(
            obs::counter_value("kernels.launches"),
            Some(telemetry_launches),
            "{kernel:?}: launches counter"
        );
    }
}

/// The in-memory Recorder sink sees one flush per step carrying the
/// registered counters, and the per-step `step` span closes it observed
/// match the run length.
#[test]
fn recorder_sink_observes_steps_and_flushes() {
    let _guard = serial();
    obs::reset();
    obs::uninstall_all();
    let recorder = std::sync::Arc::new(obs::Recorder::default());
    obs::install(recorder.clone());
    let steps = 3;
    run(KernelKind::Heuristic, steps);
    obs::uninstall_all();

    assert_eq!(recorder.count("step"), steps as u64);
    assert_eq!(recorder.step_flushes().len(), steps);
    let last = recorder.step_flushes().last().cloned().expect("flushes");
    assert!(
        last.counters
            .iter()
            .any(|&(name, _)| name == "kernels.fallback_cells"),
        "flush carries the kernel counters: {:?}",
        last.counters
    );
    assert!(recorder.total_ns_under("step") > 0);
}
