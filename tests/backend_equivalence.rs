//! The differential backend harness: NativeFast must be **bit-identical**
//! to TracedSimt, and NativeSimd must match both within a ≤4 ulp per-cell
//! bound while keeping every *count* exactly equal.
//!
//! The compute backends share the lane bodies, the seeded-Simpson plans,
//! the CSR cell lists, and the pooled lane scratch; they differ only in how
//! lanes are driven (warp-lockstep replay with op recording vs. plain
//! indexed parallel loops) and — for NativeSimd — in the vectorized,
//! reassociated integrand gather. Because per-lane arithmetic is sequential
//! within a lane and the engine folds `results[tid]` in tid order on both
//! scalar paths, every produced bit — potentials, error estimates,
//! fallback volume, launch counts — must agree exactly between TracedSimt
//! and NativeFast, for all three kernels, on any lattice, at any pool
//! width. NativeSimd is held to the DESIGN.md §17 contract instead:
//! deterministic (bit-identical run-to-run and across pool widths 0/1/4),
//! exactly equal fallback cells / launches / integrand eval+replay counts,
//! potentials within ≤4 ulp of the scalar backends. The golden corpus
//! (`tests/rp_golden.rs`) additionally pins every backend to committed bit
//! patterns.

use std::sync::Mutex;

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{BackendKind, KernelKind, Simulation, SimulationConfig};
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::simt::DeviceConfig;
use proptest::prelude::*;

/// Serializes the tests in this binary: per-step integrand eval/replay
/// deltas are read from process-global counters, so concurrent simulations
/// would pollute each other's deltas.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

/// One step's complete observable outcome, everything bit-comparable.
#[derive(Debug, Clone, PartialEq)]
struct StepRecord {
    potentials: Vec<u64>,
    errors: Vec<u64>,
    fallback_cells: usize,
    launches: usize,
    /// Fresh integrand evaluations this step (global-counter delta).
    evals: u64,
    /// Reused-abscissa replays this step (global-counter delta).
    replays: u64,
}

/// The two canonical lattices of the experiment harness: the drifting
/// elongated bunch (collective-effect patterns evolve step over step) and
/// the rigid centred validation bunch.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Lattice {
    Drift,
    Rigid,
}

const LATTICES: [Lattice; 2] = [Lattice::Drift, Lattice::Rigid];

fn workload(lattice: Lattice, kernel: KernelKind) -> (SimulationConfig, beamdyn::beam::Beam) {
    let mut config = SimulationConfig::standard(GridGeometry::unit(12, 12), kernel);
    match lattice {
        Lattice::Drift => {
            config.rp = RpConfig {
                kappa: 4,
                dt: 0.08,
                inner_points: 3,
                beta: 0.5,
                support_x: 0.25,
                support_y: 0.12,
                center: (0.5, 0.5),
            };
            config.tolerance = 1e-4;
            let bunch = GaussianBunch {
                sigma_x: 0.11,
                sigma_y: 0.09,
                center_x: 0.5,
                center_y: 0.5,
                charge: 1.0,
                velocity_spread: 0.0,
                drift_vx: 0.05,
                chirp: 0.0,
            };
            (config, bunch.sample(3000, 5))
        }
        Lattice::Rigid => {
            config.rigid = true;
            let bunch = GaussianBunch {
                center_x: 0.5,
                center_y: 0.5,
                ..GaussianBunch::centered(0.1, 0.04)
            };
            (config, bunch.sample(4000, 0xD00D))
        }
    }
}

fn run(
    lattice: Lattice,
    kernel: KernelKind,
    backend: BackendKind,
    threads: usize,
    steps: usize,
) -> Vec<StepRecord> {
    let pool = ThreadPool::new(threads);
    // The rigid lattice runs on the full K40 model (nonzero fixed launch
    // overhead) so the zero-gpu_time caveat below is checked against a
    // device that would charge overhead if the native path ever ran the
    // timing model.
    let device = match lattice {
        Lattice::Drift => DeviceConfig::test_tiny(),
        Lattice::Rigid => DeviceConfig::tesla_k40(),
    };
    let (mut config, beam) = workload(lattice, kernel);
    config.backend = backend;
    let mut sim = Simulation::new(&pool, &device, config, beam);
    assert_eq!(sim.backend_name(), backend.name());
    let counter = |name: &str| beamdyn::obs::counter_value(name).unwrap_or(0);
    (0..steps)
        .map(|_| {
            let (evals0, replays0) = (
                counter("quad.integrand_evals"),
                counter("quad.integrand_replays"),
            );
            let t = sim.run_step();
            // The documented caveat: the native backends produce answers,
            // not simulated machine metrics — gpu_time is exactly zero,
            // launch overhead included.
            match backend {
                BackendKind::NativeFast | BackendKind::NativeSimd => {
                    assert_eq!(t.potentials.gpu_time.seconds(), 0.0);
                }
                BackendKind::TracedSimt => {
                    assert!(t.potentials.gpu_time.seconds() > 0.0);
                }
            }
            StepRecord {
                potentials: t
                    .potentials
                    .points
                    .iter()
                    .map(|p| p.integral.to_bits())
                    .collect(),
                errors: t
                    .potentials
                    .points
                    .iter()
                    .map(|p| p.error.to_bits())
                    .collect(),
                fallback_cells: t.potentials.fallback_cells,
                launches: t.potentials.launches,
                evals: counter("quad.integrand_evals") - evals0,
                replays: counter("quad.integrand_replays") - replays0,
            }
        })
        .collect()
}

fn assert_identical(want: &[StepRecord], have: &[StepRecord], what: &str) {
    assert_eq!(want.len(), have.len(), "{what}: step counts differ");
    for (step, (w, h)) in want.iter().zip(have).enumerate() {
        assert_eq!(
            w.fallback_cells, h.fallback_cells,
            "{what}: step {step} fallback volume diverged"
        );
        assert_eq!(
            w.launches, h.launches,
            "{what}: step {step} launch count diverged"
        );
        for (i, (a, b)) in w.potentials.iter().zip(&h.potentials).enumerate() {
            assert_eq!(
                a,
                b,
                "{what}: step {step}, point {i}: potentials diverged \
                 ({:e} vs {:e})",
                f64::from_bits(*a),
                f64::from_bits(*b)
            );
        }
        assert_eq!(
            w.errors, h.errors,
            "{what}: step {step} error estimates diverged"
        );
        assert_eq!(
            (w.evals, w.replays),
            (h.evals, h.replays),
            "{what}: step {step} integrand eval/replay counts diverged"
        );
    }
}

/// Monotone order-isomorphic mapping of f64 bit patterns: the absolute
/// difference of two mapped values is the number of representable doubles
/// between them (the ulp distance), sign crossings measured through zero.
fn ordered_bits(bits: u64) -> u64 {
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

fn ulp_distance(a: u64, b: u64) -> u64 {
    ordered_bits(a).abs_diff(ordered_bits(b))
}

/// The NativeSimd contract: every count exactly equal, every potential
/// within `max_ulp` of the scalar reference *per potentials solve*. On a
/// pushed (non-rigid) lattice the divergence feeds back — ulp-perturbed
/// potentials move particles by ulps, which perturbs the next deposit — so
/// the per-step allowance grows linearly: step `k` is held to
/// `max_ulp · (k + 1)` (empirically generous; the observed drift is ~1 ulp
/// per fed-back step). Error estimates are *not* ulp-compared — they are
/// cancellation-amplified differences of nearby Simpson sums, so a 1-ulp
/// potential divergence can move them by many ulps without any physical
/// meaning; their effect on control flow is already pinned exactly through
/// `fallback_cells` and `launches`.
fn assert_ulp_bounded(want: &[StepRecord], have: &[StepRecord], what: &str, max_ulp: u64) {
    assert_eq!(want.len(), have.len(), "{what}: step counts differ");
    for (step, (w, h)) in want.iter().zip(have).enumerate() {
        let max_ulp = max_ulp * (step as u64 + 1);
        assert_eq!(
            w.fallback_cells, h.fallback_cells,
            "{what}: step {step} fallback volume diverged"
        );
        assert_eq!(
            w.launches, h.launches,
            "{what}: step {step} launch count diverged"
        );
        assert_eq!(
            (w.evals, w.replays),
            (h.evals, h.replays),
            "{what}: step {step} integrand eval/replay counts diverged"
        );
        assert_eq!(
            w.potentials.len(),
            h.potentials.len(),
            "{what}: step {step} point counts differ"
        );
        for (i, (a, b)) in w.potentials.iter().zip(&h.potentials).enumerate() {
            let d = ulp_distance(*a, *b);
            assert!(
                d <= max_ulp,
                "{what}: step {step}, point {i}: potentials {d} ulp apart \
                 (bound {max_ulp}; {:e} vs {:e})",
                f64::from_bits(*a),
                f64::from_bits(*b)
            );
        }
    }
}

/// The tentpole contract: all three kernels × both canonical lattices ×
/// three steps, NativeFast bit-identical to TracedSimt.
#[test]
fn native_matches_traced_on_all_kernels_and_lattices() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    for lattice in LATTICES {
        for kernel in [
            KernelKind::TwoPhase,
            KernelKind::Heuristic,
            KernelKind::Predictive,
        ] {
            let traced = run(lattice, kernel, BackendKind::TracedSimt, 2, 3);
            let native = run(lattice, kernel, BackendKind::NativeFast, 2, 3);
            assert_identical(&traced, &native, &format!("{lattice:?}/{kernel:?}"));
        }
    }
}

/// Extends the determinism.rs invariant to backend choice: NativeFast at
/// pool widths 0 / 1 / 4 reproduces the traced reference bit-for-bit — the
/// backend seam must not reintroduce any scheduling dependence.
#[test]
fn native_is_pool_width_independent_and_matches_traced() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let reference = run(
        Lattice::Drift,
        KernelKind::Predictive,
        BackendKind::TracedSimt,
        2,
        3,
    );
    for threads in [0usize, 1, 4] {
        let native = run(
            Lattice::Drift,
            KernelKind::Predictive,
            BackendKind::NativeFast,
            threads,
            3,
        );
        assert_identical(
            &reference,
            &native,
            &format!("native pool width {threads} vs traced"),
        );
    }
}

/// The NativeSimd half of the tentpole contract: all three kernels × both
/// canonical lattices × three steps. Fallback cells, launches, and
/// integrand eval/replay counts exactly equal to the scalar backends;
/// potentials within ≤4 ulp per cell.
#[test]
fn simd_matches_scalar_within_ulp_bound() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    for lattice in LATTICES {
        for kernel in [
            KernelKind::TwoPhase,
            KernelKind::Heuristic,
            KernelKind::Predictive,
        ] {
            let native = run(lattice, kernel, BackendKind::NativeFast, 2, 3);
            let simd = run(lattice, kernel, BackendKind::NativeSimd, 2, 3);
            assert_ulp_bounded(
                &native,
                &simd,
                &format!("{lattice:?}/{kernel:?} simd-vs-native"),
                4,
            );
        }
    }
}

/// NativeSimd is deterministic even though it is not bit-identical to the
/// scalar backends: fixed-width lane blocks folded in fixed order make the
/// result a pure function of the inputs, so pool widths 0 / 1 / 4 (and
/// repeated runs) reproduce each other bit-for-bit.
#[test]
fn simd_is_pool_width_independent_and_repeatable() {
    let _serial = COUNTER_LOCK.lock().unwrap();
    let reference = run(
        Lattice::Drift,
        KernelKind::Predictive,
        BackendKind::NativeSimd,
        2,
        3,
    );
    for threads in [0usize, 1, 2, 4] {
        let again = run(
            Lattice::Drift,
            KernelKind::Predictive,
            BackendKind::NativeSimd,
            threads,
            3,
        );
        assert_identical(
            &reference,
            &again,
            &format!("simd pool width {threads} vs simd reference"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary small grids, seeds, and tolerances, the NativeFast
    /// integrals equal the seeded-Simpson reference pipeline (the traced
    /// backend) bit-for-bit.
    #[test]
    fn native_matches_traced_on_arbitrary_small_grids(
        resolution in 8usize..13,
        seed in 0u64..u64::MAX,
        particles in 500usize..2000,
        tol_exp in 4u32..7,
    ) {
        let _serial = COUNTER_LOCK.lock().unwrap();
        let pool = ThreadPool::new(2);
        let device = DeviceConfig::test_tiny();
        let mut records = Vec::new();
        for backend in [BackendKind::TracedSimt, BackendKind::NativeFast] {
            let geometry = GridGeometry::unit(resolution, resolution);
            let mut config = SimulationConfig::standard(geometry, KernelKind::Predictive);
            config.rp = RpConfig::standard(4, 0.08);
            config.tolerance = 10f64.powi(-(tol_exp as i32));
            config.backend = backend;
            let bunch = GaussianBunch {
                center_x: 0.5,
                center_y: 0.5,
                ..GaussianBunch::centered(0.12, 0.06)
            };
            let beam = bunch.sample(particles, seed);
            let mut sim = Simulation::new(&pool, &device, config, beam);
            records.push(
                (0..2)
                    .map(|_| {
                        let t = sim.run_step();
                        t.potentials
                            .points
                            .iter()
                            .map(|p| (p.integral.to_bits(), p.error.to_bits()))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>(),
            );
        }
        prop_assert_eq!(&records[0], &records[1]);
    }
}
