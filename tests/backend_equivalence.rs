//! The differential backend harness: NativeFast must be **bit-identical**
//! to TracedSimt.
//!
//! The two compute backends share the lane bodies, the seeded-Simpson
//! plans, the CSR cell lists, and the pooled lane scratch; they differ only
//! in how lanes are driven (warp-lockstep replay with op recording vs.
//! plain indexed parallel loops). Because per-lane arithmetic is sequential
//! within a lane and the engine folds `results[tid]` in tid order on both
//! paths, every produced bit — potentials, error estimates, fallback
//! volume, launch counts — must agree exactly, for all three kernels, on
//! any lattice, at any pool width. This harness pins that contract; the
//! golden corpus (`tests/rp_golden.rs`) additionally pins both backends to
//! committed bit patterns.

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{BackendKind, KernelKind, Simulation, SimulationConfig};
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::simt::DeviceConfig;
use proptest::prelude::*;

/// One step's complete observable outcome, everything bit-comparable.
#[derive(Debug, Clone, PartialEq)]
struct StepRecord {
    potentials: Vec<u64>,
    errors: Vec<u64>,
    fallback_cells: usize,
    launches: usize,
}

/// The two canonical lattices of the experiment harness: the drifting
/// elongated bunch (collective-effect patterns evolve step over step) and
/// the rigid centred validation bunch.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Lattice {
    Drift,
    Rigid,
}

const LATTICES: [Lattice; 2] = [Lattice::Drift, Lattice::Rigid];

fn workload(lattice: Lattice, kernel: KernelKind) -> (SimulationConfig, beamdyn::beam::Beam) {
    let mut config = SimulationConfig::standard(GridGeometry::unit(12, 12), kernel);
    match lattice {
        Lattice::Drift => {
            config.rp = RpConfig {
                kappa: 4,
                dt: 0.08,
                inner_points: 3,
                beta: 0.5,
                support_x: 0.25,
                support_y: 0.12,
                center: (0.5, 0.5),
            };
            config.tolerance = 1e-4;
            let bunch = GaussianBunch {
                sigma_x: 0.11,
                sigma_y: 0.09,
                center_x: 0.5,
                center_y: 0.5,
                charge: 1.0,
                velocity_spread: 0.0,
                drift_vx: 0.05,
                chirp: 0.0,
            };
            (config, bunch.sample(3000, 5))
        }
        Lattice::Rigid => {
            config.rigid = true;
            let bunch = GaussianBunch {
                center_x: 0.5,
                center_y: 0.5,
                ..GaussianBunch::centered(0.1, 0.04)
            };
            (config, bunch.sample(4000, 0xD00D))
        }
    }
}

fn run(
    lattice: Lattice,
    kernel: KernelKind,
    backend: BackendKind,
    threads: usize,
    steps: usize,
) -> Vec<StepRecord> {
    let pool = ThreadPool::new(threads);
    // The rigid lattice runs on the full K40 model (nonzero fixed launch
    // overhead) so the zero-gpu_time caveat below is checked against a
    // device that would charge overhead if the native path ever ran the
    // timing model.
    let device = match lattice {
        Lattice::Drift => DeviceConfig::test_tiny(),
        Lattice::Rigid => DeviceConfig::tesla_k40(),
    };
    let (mut config, beam) = workload(lattice, kernel);
    config.backend = backend;
    let mut sim = Simulation::new(&pool, &device, config, beam);
    assert_eq!(sim.backend_name(), backend.name());
    (0..steps)
        .map(|_| {
            let t = sim.run_step();
            // The documented caveat: NativeFast produces answers, not
            // simulated machine metrics — gpu_time is exactly zero, launch
            // overhead included.
            match backend {
                BackendKind::NativeFast => {
                    assert_eq!(t.potentials.gpu_time.seconds(), 0.0);
                }
                BackendKind::TracedSimt => {
                    assert!(t.potentials.gpu_time.seconds() > 0.0);
                }
            }
            StepRecord {
                potentials: t
                    .potentials
                    .points
                    .iter()
                    .map(|p| p.integral.to_bits())
                    .collect(),
                errors: t
                    .potentials
                    .points
                    .iter()
                    .map(|p| p.error.to_bits())
                    .collect(),
                fallback_cells: t.potentials.fallback_cells,
                launches: t.potentials.launches,
            }
        })
        .collect()
}

fn assert_identical(want: &[StepRecord], have: &[StepRecord], what: &str) {
    assert_eq!(want.len(), have.len(), "{what}: step counts differ");
    for (step, (w, h)) in want.iter().zip(have).enumerate() {
        assert_eq!(
            w.fallback_cells, h.fallback_cells,
            "{what}: step {step} fallback volume diverged"
        );
        assert_eq!(
            w.launches, h.launches,
            "{what}: step {step} launch count diverged"
        );
        for (i, (a, b)) in w.potentials.iter().zip(&h.potentials).enumerate() {
            assert_eq!(
                a,
                b,
                "{what}: step {step}, point {i}: potentials diverged \
                 ({:e} vs {:e})",
                f64::from_bits(*a),
                f64::from_bits(*b)
            );
        }
        assert_eq!(
            w.errors, h.errors,
            "{what}: step {step} error estimates diverged"
        );
    }
}

/// The tentpole contract: all three kernels × both canonical lattices ×
/// three steps, NativeFast bit-identical to TracedSimt.
#[test]
fn native_matches_traced_on_all_kernels_and_lattices() {
    for lattice in LATTICES {
        for kernel in [
            KernelKind::TwoPhase,
            KernelKind::Heuristic,
            KernelKind::Predictive,
        ] {
            let traced = run(lattice, kernel, BackendKind::TracedSimt, 2, 3);
            let native = run(lattice, kernel, BackendKind::NativeFast, 2, 3);
            assert_identical(&traced, &native, &format!("{lattice:?}/{kernel:?}"));
        }
    }
}

/// Extends the determinism.rs invariant to backend choice: NativeFast at
/// pool widths 0 / 1 / 4 reproduces the traced reference bit-for-bit — the
/// backend seam must not reintroduce any scheduling dependence.
#[test]
fn native_is_pool_width_independent_and_matches_traced() {
    let reference = run(
        Lattice::Drift,
        KernelKind::Predictive,
        BackendKind::TracedSimt,
        2,
        3,
    );
    for threads in [0usize, 1, 4] {
        let native = run(
            Lattice::Drift,
            KernelKind::Predictive,
            BackendKind::NativeFast,
            threads,
            3,
        );
        assert_identical(
            &reference,
            &native,
            &format!("native pool width {threads} vs traced"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary small grids, seeds, and tolerances, the NativeFast
    /// integrals equal the seeded-Simpson reference pipeline (the traced
    /// backend) bit-for-bit.
    #[test]
    fn native_matches_traced_on_arbitrary_small_grids(
        resolution in 8usize..13,
        seed in 0u64..u64::MAX,
        particles in 500usize..2000,
        tol_exp in 4u32..7,
    ) {
        let pool = ThreadPool::new(2);
        let device = DeviceConfig::test_tiny();
        let mut records = Vec::new();
        for backend in [BackendKind::TracedSimt, BackendKind::NativeFast] {
            let geometry = GridGeometry::unit(resolution, resolution);
            let mut config = SimulationConfig::standard(geometry, KernelKind::Predictive);
            config.rp = RpConfig::standard(4, 0.08);
            config.tolerance = 10f64.powi(-(tol_exp as i32));
            config.backend = backend;
            let bunch = GaussianBunch {
                center_x: 0.5,
                center_y: 0.5,
                ..GaussianBunch::centered(0.12, 0.06)
            };
            let beam = bunch.sample(particles, seed);
            let mut sim = Simulation::new(&pool, &device, config, beam);
            records.push(
                (0..2)
                    .map(|_| {
                        let t = sim.run_step();
                        t.potentials
                            .points
                            .iter()
                            .map(|p| (p.integral.to_bits(), p.error.to_bits()))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>(),
            );
        }
        prop_assert_eq!(&records[0], &records[1]);
    }
}
