//! Cross-crate integration tests: the full four-step simulation through
//! every kernel, correctness against the analytic reference, and the
//! comparative machine-metric shapes the paper reports.

use beamdyn::beam::forces::ScalarField;
use beamdyn::beam::{AnalyticRp, GaussianBunch, RpConfig};
use beamdyn::core::{KernelKind, Simulation, SimulationConfig};
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::simt::DeviceConfig;

fn config(kernel: KernelKind, n: usize) -> SimulationConfig {
    let mut cfg = SimulationConfig::standard(GridGeometry::unit(n, n), kernel);
    cfg.rp = RpConfig {
        kappa: 4,
        dt: 0.08,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.25,
        support_y: 0.12,
        center: (0.5, 0.5),
    };
    cfg.tolerance = 1e-4;
    cfg
}

fn bunch() -> GaussianBunch {
    GaussianBunch {
        sigma_x: 0.11,
        // σ_y must exceed the coarsest test grid's cell size (1/16), or
        // deposition legitimately smears the peak and no kernel can match
        // the continuous reference.
        sigma_y: 0.09,
        center_x: 0.5,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.05,
        chirp: 0.0,
    }
}

#[test]
fn every_kernel_completes_a_multi_step_simulation_within_tolerance() {
    let pool = ThreadPool::new(2);
    let device = DeviceConfig::test_tiny();
    for kernel in [
        KernelKind::TwoPhase,
        KernelKind::Heuristic,
        KernelKind::Predictive,
    ] {
        let mut sim = Simulation::new(&pool, &device, config(kernel, 16), bunch().sample(8000, 3));
        let telemetry = sim.run(5);
        assert_eq!(telemetry.len(), 5);
        for t in &telemetry {
            assert!(
                t.potentials.max_error() <= 1e-4 * 1.001,
                "{kernel:?} step {}: max error {}",
                t.step,
                t.potentials.max_error()
            );
            assert!(t.potentials.gpu_time.seconds() > 0.0);
        }
    }
}

#[test]
fn kernels_agree_with_each_other_and_with_the_analytic_reference() {
    let pool = ThreadPool::new(2);
    let device = DeviceConfig::test_tiny();
    // 24²: fine enough that CIC + TSC smoothing stays within the tolerance
    // below (at 16² the deposited peak is legitimately ~15 % lower than the
    // continuous density).
    let n = 24;
    let mut fields = Vec::new();
    for kernel in [
        KernelKind::TwoPhase,
        KernelKind::Heuristic,
        KernelKind::Predictive,
    ] {
        let mut cfg = config(kernel, n);
        cfg.rigid = true; // freeze dynamics so all kernels see identical input
        let mut sim = Simulation::new(&pool, &device, cfg, bunch().sample(60_000, 3));
        let telemetry = sim.run(4);
        fields.push(ScalarField::new(
            GridGeometry::unit(n, n),
            telemetry.last().unwrap().potentials.potentials(),
        ));
    }
    // Kernel-to-kernel agreement at the centre.
    let probe = [(0.5, 0.5), (0.4, 0.55), (0.62, 0.45)];
    for &(x, y) in &probe {
        let vals: Vec<f64> = fields.iter().map(|f| f.sample(x, y)).collect();
        let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        let scale = vals[0].abs().max(1e-9);
        assert!(
            spread / scale < 0.01,
            "kernel spread {spread} at ({x},{y}): {vals:?}"
        );
    }
    // Agreement with the continuous-bunch reference (PIC noise limited).
    let cfg = config(KernelKind::TwoPhase, n);
    let reference = AnalyticRp::new(bunch(), cfg.rp);
    let step = 3;
    for &(x, y) in &probe {
        let want = reference.reference_integral(step, x, y, 128);
        let got = fields[0].sample(x, y);
        assert!(
            (got - want).abs() / want.abs().max(1e-9) < 0.08,
            "grid {got} vs analytic {want} at ({x},{y})"
        );
    }
}

#[test]
fn predictive_kernel_has_the_paper_quality_shapes() {
    let pool = ThreadPool::new(2);
    let device = DeviceConfig::tesla_k40();
    let steps = 6;
    // The standard dynamic workload (drifting elongated bunch, κ = 12):
    // the regime the paper's evaluation targets.
    let run = |kernel| {
        let mut cfg = SimulationConfig::standard(GridGeometry::unit(24, 24), kernel);
        cfg.rp = RpConfig {
            kappa: 12,
            dt: 0.35 / 12.0,
            inner_points: 3,
            beta: 0.5,
            support_x: 0.42,
            support_y: 0.09,
            center: (0.3, 0.5),
        };
        cfg.tolerance = 1e-5;
        let moving = GaussianBunch {
            sigma_x: 0.12,
            sigma_y: 0.04,
            center_x: 0.3,
            center_y: 0.5,
            charge: 1.0,
            velocity_spread: 0.0,
            drift_vx: 0.4,
            chirp: 0.0,
        };
        let mut sim = Simulation::new(&pool, &device, cfg, moving.sample(20_000, 3));
        let telemetry = sim.run(steps);
        let mut stats = beamdyn::simt::KernelStats::default();
        let mut fallback = 0usize;
        for t in &telemetry[steps / 2..] {
            stats.merge(&t.potentials.combined_stats());
            fallback += t.potentials.fallback_cells;
        }
        (stats, fallback)
    };
    let (pred, pred_fb) = run(KernelKind::Predictive);
    let (heur, _) = run(KernelKind::Heuristic);
    let (two, two_fb) = run(KernelKind::TwoPhase);

    // Table I shape: the predictive kernel has the best warp efficiency...
    let eff_pred = pred.warp_execution_efficiency(&device);
    let eff_heur = heur.warp_execution_efficiency(&device);
    let eff_two = two.warp_execution_efficiency(&device);
    assert!(
        eff_pred > eff_heur,
        "warp eff: predictive {eff_pred} vs heuristic {eff_heur}"
    );
    assert!(
        eff_pred > eff_two,
        "warp eff: predictive {eff_pred} vs two-phase {eff_two}"
    );
    // ...and the forecast slashes the adaptive-fallback volume vs cold start.
    assert!(
        pred_fb < two_fb,
        "fallback volume: predictive {pred_fb} vs two-phase {two_fb}"
    );
    // Arithmetic intensity ordering vs the previous state of the art
    // (Fig 4 shape: the predictive kernel filters more traffic per flop).
    assert!(
        pred.arithmetic_intensity() > heur.arithmetic_intensity(),
        "AI: predictive {} vs heuristic {}",
        pred.arithmetic_intensity(),
        heur.arithmetic_intensity()
    );
}

#[test]
fn beam_dynamics_actually_move_particles_when_not_rigid() {
    let pool = ThreadPool::new(2);
    let device = DeviceConfig::test_tiny();
    let mut cfg = config(KernelKind::Heuristic, 16);
    cfg.force_scale = 0.002;
    let beam = bunch().sample(4000, 9);
    let before = beam.rms_size();
    let mut sim = Simulation::new(&pool, &device, cfg, beam);
    sim.run(4);
    let after = sim.beam().rms_size();
    assert!(
        (after.0 - before.0).abs() > 1e-9 || (after.1 - before.1).abs() > 1e-9,
        "self-fields must perturb the beam"
    );
    // The perturbation stays perturbative (no blow-up).
    assert!(after.0 < 2.0 * before.0 && after.1 < 2.0 * before.1);
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let pool = ThreadPool::new(3);
    let device = DeviceConfig::test_tiny();
    let run = || {
        let mut sim = Simulation::new(
            &pool,
            &device,
            config(KernelKind::Predictive, 12),
            bunch().sample(3000, 5),
        );
        let telemetry = sim.run(3);
        telemetry.last().unwrap().potentials.potentials()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seeds, same pool-independent results");
}
