//! Golden-value pins for the rp-integral hot path.
//!
//! The resolved-window `GridRp::eval` refactor and the sample-reusing
//! (seeded) Simpson pipeline are pure re-arrangements: every value they
//! produce must be **bit-identical** to the pre-refactor evaluation. These
//! tests pin that contract to concrete bit patterns recorded from the
//! original implementation, so any future "optimisation" that perturbs even
//! the last ulp of the potentials fails loudly instead of drifting the
//! physics.

use beamdyn::beam::{GaussianBunch, GridRp, NullSink, RpConfig};
use beamdyn::core::{BackendKind, KernelKind, Simulation, SimulationConfig};
use beamdyn::par::ThreadPool;
use beamdyn::pic::{deposit_cic, DepositSample, GridGeometry, GridHistory, MomentGrid};
use beamdyn::simt::DeviceConfig;

/// The seeded 20×20 moment-grid history every eval golden uses.
fn history(pool: &ThreadPool) -> GridHistory {
    let g = GridGeometry::unit(20, 20);
    let bunch = GaussianBunch {
        center_x: 0.5,
        center_y: 0.5,
        ..GaussianBunch::centered(0.12, 0.06)
    };
    let beam = bunch.sample(20_000, 17);
    let samples: Vec<DepositSample> = beam
        .particles
        .iter()
        .map(|p| DepositSample {
            x: p.x,
            y: p.y,
            weight: p.weight,
            vx: p.vx,
            vy: p.vy,
        })
        .collect();
    let mut h = GridHistory::new(g, 8);
    for k in 0..6 {
        let mut grid = MomentGrid::zeros(g);
        deposit_cic(pool, &mut grid, &samples);
        h.push(k, grid);
    }
    h
}

/// `(x, y, r, step, expected bits)` recorded from the pre-refactor
/// implementation. Covers interior points, r = 0, large radii that clip the
/// support window, off-support points (exactly 0.0), and early steps with a
/// short history horizon.
const EVAL_GOLDEN: &[(f64, f64, f64, usize, u64)] = &[
    (0.5, 0.5, 0.05, 5, 0x405ac8c374013577),
    (0.5, 0.5, 0.0, 5, 0x405ce439f1759bba),
    (0.4, 0.6, 0.21, 5, 0x4024d9332bd62d32),
    (0.7, 0.3, 0.30, 5, 0x3fea7c677a476c61),
    (0.05, 0.95, 0.15, 4, 0x0),
    (0.98, 0.02, 0.33, 3, 0x0),
    (0.31, 0.52, 0.12, 1, 0x4041db50a83bf5cf),
    (0.5, 0.47, 0.29, 0, 0x401af825286901a5),
];

#[test]
fn eval_matches_recorded_bit_patterns() {
    let pool = ThreadPool::new(2);
    let h = history(&pool);
    for &(x, y, r, step, bits) in EVAL_GOLDEN {
        let rp = GridRp::new(&h, RpConfig::standard(4, 0.08), step);
        let v = rp.eval(x, y, r, &mut NullSink);
        assert_eq!(
            v.to_bits(),
            bits,
            "eval({x}, {y}, {r}) at step {step}: got {v:e} = 0x{:016x}, want 0x{bits:016x}",
            v.to_bits()
        );
    }
}

#[test]
fn eval_beta_zero_matches_recorded_bit_patterns() {
    // β = 0 drops the vx/vy moment components from the gather.
    let golden: &[(f64, f64, f64, usize, u64)] = &[
        (0.5, 0.5, 0.05, 5, 0x405ac8c374013577),
        (0.5, 0.5, 0.0, 5, 0x405ce439f1759bba),
        (0.4, 0.6, 0.21, 5, 0x4024d9332bd62d32),
    ];
    let pool = ThreadPool::new(2);
    let h = history(&pool);
    for &(x, y, r, step, bits) in golden {
        let mut cfg = RpConfig::standard(4, 0.08);
        cfg.beta = 0.0;
        let rp = GridRp::new(&h, cfg, step);
        let v = rp.eval(x, y, r, &mut NullSink);
        assert_eq!(v.to_bits(), bits, "beta=0 eval({x}, {y}, {r}) step {step}");
    }
}

#[test]
fn eval_inner_points_5_matches_recorded_bit_patterns() {
    // A 5-point inner rule exercises the folded angle table's odd/even
    // weight split differently from the standard 3-point rule.
    let golden: &[(f64, f64, f64, usize, u64)] = &[
        (0.5, 0.5, 0.05, 5, 0x4057b24788ecf604),
        (0.5, 0.5, 0.0, 5, 0x405ce439f1759bba),
        (0.4, 0.6, 0.21, 5, 0x4029e739d94e3467),
    ];
    let pool = ThreadPool::new(2);
    let h = history(&pool);
    for &(x, y, r, step, bits) in golden {
        let mut cfg = RpConfig::standard(4, 0.08);
        cfg.inner_points = 5;
        let rp = GridRp::new(&h, cfg, step);
        let v = rp.eval(x, y, r, &mut NullSink);
        assert_eq!(
            v.to_bits(),
            bits,
            "inner_points=5 eval({x}, {y}, {r}) step {step}"
        );
    }
}

/// `GridRp::eval_simd` golden bits — the `*.simd` variant of [`EVAL_GOLDEN`].
///
/// The vectorized gather reassociates the 27-tap stencil sum (fixed-order
/// lane fold instead of the scalar accumulation order), so its results are
/// *deterministically different* from `eval`: identical on every machine and
/// pool width, but allowed to differ from the scalar corpus by the last few
/// ulp. Off-support zeros and single-plane cases stay exactly equal.
const EVAL_SIMD_GOLDEN: &[(f64, f64, f64, usize, u64)] = &[
    (0.5, 0.5, 0.05, 5, 0x405ac8c374013577),
    (0.5, 0.5, 0.0, 5, 0x405ce439f1759bba),
    (0.4, 0.6, 0.21, 5, 0x4024d9332bd62d32),
    (0.7, 0.3, 0.30, 5, 0x3fea7c677a476c60),
    (0.05, 0.95, 0.15, 4, 0x0),
    (0.98, 0.02, 0.33, 3, 0x0),
    (0.31, 0.52, 0.12, 1, 0x4041db50a83bf5ce),
    (0.5, 0.47, 0.29, 0, 0x401af825286901a4),
];

#[test]
fn eval_simd_matches_recorded_bit_patterns() {
    let pool = ThreadPool::new(2);
    let h = history(&pool);
    for &(x, y, r, step, bits) in EVAL_SIMD_GOLDEN {
        let rp = GridRp::new(&h, RpConfig::standard(4, 0.08), step);
        let v = rp.eval_simd(x, y, r);
        assert_eq!(
            v.to_bits(),
            bits,
            "eval_simd({x}, {y}, {r}) at step {step}: got {v:e} = 0x{:016x}, \
             want 0x{bits:016x}",
            v.to_bits()
        );
    }
}

#[test]
fn eval_simd_config_variants_match_recorded_bit_patterns() {
    // β = 0 and the 5-point inner rule through the vectorized gather. The
    // β = 0 bits equal the standard-config bits for this zero-velocity
    // bunch (as in the scalar corpus); inner5 matches the scalar inner5
    // corpus exactly at these points (the reassociation happened to round
    // identically — pinned so that stays an observable fact, not luck).
    let beta_zero: &[(f64, f64, f64, usize, u64)] = &[
        (0.5, 0.5, 0.05, 5, 0x405ac8c374013577),
        (0.5, 0.5, 0.0, 5, 0x405ce439f1759bba),
        (0.4, 0.6, 0.21, 5, 0x4024d9332bd62d32),
    ];
    let inner5: &[(f64, f64, f64, usize, u64)] = &[
        (0.5, 0.5, 0.05, 5, 0x4057b24788ecf604),
        (0.5, 0.5, 0.0, 5, 0x405ce439f1759bba),
        (0.4, 0.6, 0.21, 5, 0x4029e739d94e3467),
    ];
    let pool = ThreadPool::new(2);
    let h = history(&pool);
    for &(x, y, r, step, bits) in beta_zero {
        let mut cfg = RpConfig::standard(4, 0.08);
        cfg.beta = 0.0;
        let rp = GridRp::new(&h, cfg, step);
        let v = rp.eval_simd(x, y, r);
        assert_eq!(
            v.to_bits(),
            bits,
            "beta=0 eval_simd({x}, {y}, {r}) step {step}"
        );
    }
    for &(x, y, r, step, bits) in inner5 {
        let mut cfg = RpConfig::standard(4, 0.08);
        cfg.inner_points = 5;
        let rp = GridRp::new(&h, cfg, step);
        let v = rp.eval_simd(x, y, r);
        assert_eq!(
            v.to_bits(),
            bits,
            "inner_points=5 eval_simd({x}, {y}, {r}) step {step}"
        );
    }
}

/// Per-kernel end-to-end golden: the bit pattern of the summed potentials
/// (and error estimates) after each of three steps. All three kernels agree
/// on every step — planning differs, but accepted integrals are the same
/// numbers accumulated in the same order. Both compute backends must hit
/// the same bits: NativeFast is a pure re-arrangement of the traced
/// execution (`tests/backend_equivalence.rs` is the differential harness;
/// this pins both paths to committed constants).
const KERNEL_GOLDEN: &[(usize, u64, u64)] = &[
    (0, 0x404a71cc403aa0fa, 0x3ee89950b187dddb),
    (1, 0x404a71cc403aa0f9, 0x3ee89950b186e89a),
    (2, 0x405a76ba61fa5f49, 0x3ed9fb2ef3a20574),
];

/// Both backends, in golden-corpus runs.
const BACKENDS: [BackendKind; 2] = [BackendKind::TracedSimt, BackendKind::NativeFast];

/// Runs the golden 12² rigid scenario for three steps and asserts the
/// per-step summed-potentials/summed-error bit patterns.
fn assert_kernel_golden(
    what: &str,
    kernel: KernelKind,
    backend: BackendKind,
    golden: &[(usize, u64, u64)],
    mutate: impl Fn(&mut SimulationConfig),
) {
    let pool = ThreadPool::new(2);
    let device = DeviceConfig::tesla_k40();
    let geometry = GridGeometry::unit(12, 12);
    let mut config = SimulationConfig::standard(geometry, kernel);
    config.rigid = true;
    config.backend = backend;
    mutate(&mut config);
    let bunch = GaussianBunch {
        center_x: 0.5,
        center_y: 0.5,
        ..GaussianBunch::centered(0.1, 0.04)
    };
    let beam = bunch.sample(4_000, 0xD00D);
    let mut sim = Simulation::new(&pool, &device, config, beam);
    for &(step, sum_bits, err_bits) in golden {
        let t = sim.run_step();
        let sum: f64 = t.potentials.points.iter().map(|p| p.integral).sum();
        let err: f64 = t.potentials.points.iter().map(|p| p.error).sum();
        assert_eq!(
            sum.to_bits(),
            sum_bits,
            "{what}: {kernel:?}/{backend:?} step {step}: potentials sum 0x{:016x} != \
             golden 0x{sum_bits:016x}",
            sum.to_bits()
        );
        assert_eq!(
            err.to_bits(),
            err_bits,
            "{what}: {kernel:?}/{backend:?} step {step}: error sum drifted"
        );
    }
}

#[test]
fn kernel_potentials_sums_match_recorded_bit_patterns() {
    for backend in BACKENDS {
        for kernel in [
            KernelKind::TwoPhase,
            KernelKind::Heuristic,
            KernelKind::Predictive,
        ] {
            assert_kernel_golden("standard", kernel, backend, KERNEL_GOLDEN, |_| {});
        }
    }
}

/// A τ three orders tighter than standard drives a fallback-heavy step
/// (the main pass misses on many cells, so most of the work runs through
/// the adaptive pass) — the golden corpus's stress case for the
/// fixed→fallback seed handoff on both backends.
const FALLBACK_HEAVY_GOLDEN: &[(usize, u64, u64)] = &[
    (0, 0x404a71cc418f3c25, 0x3e6f1ece20af436b),
    (1, 0x404a71cc418f3c25, 0x3e6f1ece1fdbfca7),
    (2, 0x405a76ba65cff04e, 0x3e56118e172fb395),
];

/// β = 0 drops the vx/vy moment components from the kernel-run gathers
/// (bit-identical to the standard run for this zero-velocity bunch, as in
/// the eval-level corpus — pinned so the β path cannot silently perturb).
const BETA_ZERO_GOLDEN: &[(usize, u64, u64)] = KERNEL_GOLDEN;

/// The 5-point inner rule through full kernel runs.
const INNER5_GOLDEN: &[(usize, u64, u64)] = &[
    (0, 0x404a6e2408279749, 0x3ee81a35b2eebb14),
    (1, 0x404a6e2408279749, 0x3ee81a35b2ede91d),
    (2, 0x405a6f86acb655f6, 0x3eda8151d8300d74),
];

/// A golden-corpus config variant: label, expected bits, config mutation.
type GoldenVariant = (
    &'static str,
    &'static [(usize, u64, u64)],
    fn(&mut SimulationConfig),
);

#[test]
fn kernel_golden_corpus_variants_match_on_both_backends() {
    let variants: [GoldenVariant; 3] = [
        ("fallback-heavy tau=1e-8", FALLBACK_HEAVY_GOLDEN, |c| {
            c.tolerance = 1e-8
        }),
        ("beta=0", BETA_ZERO_GOLDEN, |c| c.rp.beta = 0.0),
        ("inner_points=5", INNER5_GOLDEN, |c| c.rp.inner_points = 5),
    ];
    for (what, golden, mutate) in variants {
        for backend in BACKENDS {
            for kernel in [
                KernelKind::TwoPhase,
                KernelKind::Heuristic,
                KernelKind::Predictive,
            ] {
                assert_kernel_golden(what, kernel, backend, golden, mutate);
            }
        }
    }
}

/// `*.simd` variants of the kernel golden corpus: the same scenarios run on
/// `BackendKind::NativeSimd`. The vectorized quadrature reassociates the
/// stencil fold, so these pin their *own* bit patterns — within 1 ulp of
/// [`KERNEL_GOLDEN`] on this corpus, but a distinct deterministic contract.
/// The SoA deposit/gather/push stages are bit-identical to scalar by
/// construction, so on this rigid lattice the divergence is purely the
/// quadrature gather. All three kernels agree on every step, as in the
/// scalar corpus.
const KERNEL_GOLDEN_SIMD: &[(usize, u64, u64)] = &[
    (0, 0x404a71cc403aa0f9, 0x3ee89950b18738bf),
    (1, 0x404a71cc403aa0f9, 0x3ee89950b18680c7),
    (2, 0x405a76ba61fa5f49, 0x3ed9fb2ef39fccdd),
];

/// Fallback-heavy (τ = 1e-8) stress case on the SIMD backend.
const FALLBACK_HEAVY_SIMD: &[(usize, u64, u64)] = &[
    (0, 0x404a71cc418f3c24, 0x3e6f1ece200f105b),
    (1, 0x404a71cc418f3c25, 0x3e6f1ece1f4f91d4),
    (2, 0x405a76ba65cff04e, 0x3e56118e14f27003),
];

/// β = 0 on the SIMD backend — bit-identical to the standard SIMD run for
/// this zero-velocity bunch (the J-moment gathers are exact zeros either
/// way), mirroring the scalar corpus's `BETA_ZERO_GOLDEN = KERNEL_GOLDEN`.
const BETA_ZERO_SIMD: &[(usize, u64, u64)] = KERNEL_GOLDEN_SIMD;

/// The 5-point inner rule on the SIMD backend.
const INNER5_SIMD: &[(usize, u64, u64)] = &[
    (0, 0x404a6e2408279749, 0x3ee81a35b2eddc7c),
    (1, 0x404a6e2408279749, 0x3ee81a35b2ede876),
    (2, 0x405a6f86acb655f6, 0x3eda8151d82e835c),
];

#[test]
fn kernel_golden_corpus_simd_variants_match() {
    let variants: [GoldenVariant; 4] = [
        ("simd standard", KERNEL_GOLDEN_SIMD, |_| {}),
        ("simd fallback-heavy tau=1e-8", FALLBACK_HEAVY_SIMD, |c| {
            c.tolerance = 1e-8
        }),
        ("simd beta=0", BETA_ZERO_SIMD, |c| c.rp.beta = 0.0),
        ("simd inner_points=5", INNER5_SIMD, |c| {
            c.rp.inner_points = 5
        }),
    ];
    for (what, golden, mutate) in variants {
        for kernel in [
            KernelKind::TwoPhase,
            KernelKind::Heuristic,
            KernelKind::Predictive,
        ] {
            assert_kernel_golden(what, kernel, BackendKind::NativeSimd, golden, mutate);
        }
    }
}
