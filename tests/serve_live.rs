//! Live telemetry serving, end to end in one process: a real simulation
//! runs while the monitor server answers `/metrics`, `/status`, `/events`,
//! `/healthz`, and `/readyz` over real TCP sockets.
//!
//! This pins the serving acceptance contract (DESIGN.md §11):
//!
//! * `/metrics` is valid Prometheus 0.0.4 text — it round-trips through the
//!   in-repo `bench::scrape` parser — and the scraped
//!   `beamdyn_kernels_fallback_cells_total` equals the registry counter and
//!   the [`Recorder`]'s final step flush **exactly**;
//! * `/events` delivers exactly one SSE `step` event per completed step,
//!   ids in step order, each `data:` payload a valid JSON object;
//! * `/status` reflects the run (steps completed, totals), and the health
//!   endpoints answer while the server is up.
//!
//! Kept to a single `#[test]` because the obs registry is process-global.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{KernelKind, Simulation, SimulationConfig, StatusBoard};
use beamdyn::obs;
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::serve::{MonitorServer, ServeConfig, ServeContext};
use beamdyn::simt::DeviceConfig;
use beamdyn_bench::json;
use beamdyn_bench::scrape::{collect_sse, http_get, parse_exposition};

const STEPS: usize = 6;

#[test]
fn live_run_serves_metrics_status_and_one_sse_event_per_step() {
    obs::uninstall_all();
    obs::reset();

    // The two telemetry consumers next to the simulation: an in-process
    // recorder (ground truth) and the broadcast fan-out backing /events.
    let recorder = obs::Recorder::new();
    obs::install(recorder.clone());
    let events = obs::BroadcastSink::new();
    obs::install(events.clone());

    let pool = ThreadPool::new(2);
    let device = DeviceConfig::tesla_k40();
    let kappa = 2;
    let mut config = SimulationConfig::standard(GridGeometry::unit(16, 16), KernelKind::Predictive);
    config.rp = RpConfig {
        kappa,
        dt: 0.35 / kappa as f64,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.42,
        support_y: 0.09,
        center: (0.4, 0.5),
    };
    let bunch = GaussianBunch {
        sigma_x: 0.12,
        sigma_y: 0.03,
        center_x: 0.4,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.2,
        chirp: 0.0,
    };
    let mut sim = Simulation::new(&pool, &device, config, bunch.sample(3_000, 42));

    let status = StatusBoard::new(sim.kernel_name(), sim.backend_name());
    let ready = Arc::new(AtomicBool::new(false));
    let server = MonitorServer::start(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
        ServeContext {
            status: Arc::clone(&status),
            events: events.clone(),
            ready: Arc::clone(&ready),
            sessions: None,
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    // Health endpoints before readiness is declared.
    assert_eq!(http_get(&addr, "/healthz").unwrap().0, 200);
    assert_eq!(
        http_get(&addr, "/readyz").unwrap().0,
        503,
        "/readyz must gate on the readiness flag"
    );
    ready.store(true, Ordering::Release);
    assert_eq!(http_get(&addr, "/readyz").unwrap().0, 200);
    assert_eq!(http_get(&addr, "/nope").unwrap().0, 404);

    // Attach the SSE consumer *before* stepping so it sees every event.
    let sse = {
        let addr = addr.clone();
        std::thread::spawn(move || collect_sse(&addr, "/events", STEPS, Duration::from_secs(30)))
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while events.subscriber_count() == 0 {
        assert!(
            Instant::now() < deadline,
            "SSE handler never subscribed to the broadcast"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    for _ in 0..STEPS {
        let telemetry = sim.run_step();
        status.record(&telemetry);
    }
    status.set_state("done");

    // Exactly one SSE event per step, in step order, each payload JSON.
    let sse_events = sse.join().expect("collector thread").expect("collect SSE");
    assert_eq!(
        sse_events.len(),
        STEPS,
        "exactly one SSE event per completed step"
    );
    for (i, event) in sse_events.iter().enumerate() {
        assert_eq!(event.event, "step");
        assert_eq!(event.id.as_deref(), Some(i.to_string().as_str()));
        let payload = json::parse(&event.data)
            .unwrap_or_else(|e| panic!("SSE data for step {i} is not JSON: {e}\n{}", event.data));
        assert_eq!(
            payload.get("step").and_then(|v| v.as_f64()),
            Some(i as f64),
            "SSE payload carries its step index"
        );
    }

    // /metrics round-trips through the in-repo Prometheus parser, and the
    // fallback counter agrees with the registry and the Recorder exactly.
    let (code, text) = http_get(&addr, "/metrics").expect("GET /metrics");
    assert_eq!(code, 200);
    let exposition = parse_exposition(&text).expect("valid Prometheus 0.0.4 text");
    let scraped = exposition
        .value("beamdyn_kernels_fallback_cells_total")
        .expect("fallback counter exposed");
    let registry = obs::counter_value("kernels.fallback_cells").expect("registry counter");
    assert_eq!(
        scraped, registry as f64,
        "/metrics must mirror the registry"
    );
    let flushes = recorder.step_flushes();
    assert_eq!(flushes.len(), STEPS, "one flush per step");
    let recorded = flushes
        .last()
        .unwrap()
        .counters
        .iter()
        .find(|(name, _)| *name == "kernels.fallback_cells")
        .map(|&(_, v)| v)
        .expect("recorder saw the fallback counter");
    assert_eq!(
        scraped, recorded as f64,
        "scraped fallback_cells must equal the Recorder's counter exactly"
    );
    assert_eq!(
        exposition.types.get("beamdyn_kernels_fallback_cells_total"),
        Some(&"counter".to_string())
    );
    assert_eq!(
        exposition.types.get("beamdyn_stage_step_ns"),
        Some(&"histogram".to_string()),
        "stage latency histograms are exposed"
    );
    // Histogram sanity: the step-stage histogram counted every step.
    assert_eq!(
        exposition.value("beamdyn_stage_step_ns_count"),
        Some(STEPS as f64)
    );

    // /status reflects the finished run.
    let (code, body) = http_get(&addr, "/status").expect("GET /status");
    assert_eq!(code, 200);
    let parsed = json::parse(&body).expect("/status is JSON");
    assert_eq!(parsed.get("state").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(
        parsed.get("backend").and_then(|v| v.as_str()),
        Some(sim.backend_name()),
        "/status names the active compute backend"
    );
    assert_eq!(
        parsed.get("steps_completed").and_then(|v| v.as_f64()),
        Some(STEPS as f64)
    );
    assert_eq!(
        parsed
            .get("totals")
            .and_then(|t| t.get("fallback_cells"))
            .and_then(|v| v.as_f64()),
        Some(registry as f64),
        "/status totals agree with the registry counter"
    );

    server.shutdown();
    server.join();
    obs::uninstall_all();
}
