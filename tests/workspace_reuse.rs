//! Steady-state workspace reuse: after warm-up, a simulation step performs
//! no workspace heap growth for any of the three kernels.
//!
//! The integration horizon grows until `step == kappa`
//! (`RpConfig::num_subregions`), so the workload pins `kappa = 1`: radii are
//! at their final value from the very first step, and the one-step lag with
//! which Heuristic-RP / Predictive-RP re-evaluate the partitions observed at
//! the previous step (their cell-buffer high-water mark) has fully played
//! out by step 2. Every step from 3 on must therefore run entirely inside
//! capacity the workspace already owns. The invariant is read back through the
//! `workspace.grown_this_step` / `workspace.bytes_resident` gauges the
//! driver publishes each step — the same numbers `BENCH_*.jsonl` artifacts
//! carry.
//!
//! The test runs with a [`obs::BroadcastSink`] installed and a live
//! subscriber attached — the live-telemetry fan-out must not perturb the
//! hot path: steady-state steps stay zero-growth and every flush still
//! reaches the subscriber.

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{BackendKind, KernelKind, Simulation, SimulationConfig};
use beamdyn::obs;
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::simt::DeviceConfig;

fn workload(kernel: KernelKind) -> (SimulationConfig, beamdyn::beam::Beam) {
    let kappa = 1;
    let mut config = SimulationConfig::standard(GridGeometry::unit(32, 32), kernel);
    config.rp = RpConfig {
        kappa,
        dt: 0.35 / kappa as f64,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.42,
        support_y: 0.09,
        center: (0.5, 0.5),
    };
    // Rigid: the bunch (and with it the support cut) stays put, so the
    // radii are identical from the first step onward.
    config.rigid = true;
    let bunch = GaussianBunch {
        sigma_x: 0.12,
        sigma_y: 0.03,
        center_x: 0.5,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.0,
        chirp: 0.0,
    };
    (config, bunch.sample(5_000, 0x5EED))
}

#[test]
fn steady_state_steps_do_not_grow_the_workspace() {
    // Live telemetry fan-out installed for the whole run: the invariant
    // must hold with /events subscribers listening.
    let events = obs::BroadcastSink::new();
    let rx = events.subscribe();
    obs::install(events);
    let mut flushes = 0usize;

    let pool = ThreadPool::new(2);
    let device = DeviceConfig::tesla_k40();
    // The zero-growth invariant is a property of the workspace discipline,
    // not of the execution strategy: both compute backends run out of the
    // same pooled buffers, so both must hold it.
    for backend in [BackendKind::TracedSimt, BackendKind::NativeFast] {
        for kernel in [
            KernelKind::TwoPhase,
            KernelKind::Heuristic,
            KernelKind::Predictive,
        ] {
            let (mut config, beam) = workload(kernel);
            config.backend = backend;
            let mut sim = Simulation::new(&pool, &device, config, beam);
            for step in 0..8 {
                sim.run_step();
                let resident = obs::gauge_value("workspace.bytes_resident")
                    .expect("driver publishes workspace.bytes_resident");
                let grown = obs::gauge_value("workspace.grown_this_step")
                    .expect("driver publishes workspace.grown_this_step");
                assert!(
                    resident > 0.0,
                    "{kernel:?}/{backend:?}: workspace must hold buffers after step {step}"
                );
                assert_eq!(
                    resident,
                    sim.workspace().bytes_resident() as f64,
                    "{kernel:?}/{backend:?}: gauge must mirror the workspace accounting"
                );
                assert!(
                    sim.workspace().lane_scratch_bytes() > 0,
                    "{kernel:?}/{backend:?}: the pooled lane-scratch arena must hold the \
                     per-thread result lists after step {step}"
                );
                if step >= 3 {
                    assert_eq!(
                        grown, 0.0,
                        "{kernel:?}/{backend:?}: steady-state step {step} grew the workspace \
                         by {grown} bytes (resident {resident})"
                    );
                }
                flushes += 1;
            }
        }
    }

    // The always-on flight recorder was live for every one of those steps
    // (one `step` event per driver step, plus kernel grades) — the
    // zero-growth invariant above therefore holds *with* the black box
    // recording, not in a stripped build.
    assert!(
        obs::flight::global().recorded() >= flushes as u64,
        "flight recorder must have captured at least one event per step ({} < {flushes})",
        obs::flight::global().recorded()
    );

    // Every step flush reached the live subscriber, none were dropped.
    assert_eq!(
        rx.drain().len(),
        flushes,
        "broadcast subscriber must see one event per step"
    );
    assert_eq!(
        obs::counter_value("telemetry.dropped_events").unwrap_or(0),
        0,
        "no events may be dropped with an attentive subscriber"
    );
    obs::uninstall_all();
}
