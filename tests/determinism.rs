//! Determinism regression tests: the simulation must be a pure function of
//! its seeds — in particular independent of how many worker threads the
//! host pool runs, because every parallel combinator in `beamdyn-par` is
//! order-preserving (chunked writes to disjoint slices, ordered reduction).

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{KernelKind, Simulation, SimulationConfig};
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::simt::DeviceConfig;

fn config(kernel: KernelKind) -> SimulationConfig {
    let mut cfg = SimulationConfig::standard(GridGeometry::unit(12, 12), kernel);
    cfg.rp = RpConfig {
        kappa: 4,
        dt: 0.08,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.25,
        support_y: 0.12,
        center: (0.5, 0.5),
    };
    cfg.tolerance = 1e-4;
    cfg
}

fn bunch() -> GaussianBunch {
    GaussianBunch {
        sigma_x: 0.11,
        sigma_y: 0.09,
        center_x: 0.5,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.05,
        chirp: 0.0,
    }
}

fn potentials_with_pool(kernel: KernelKind, threads: usize) -> Vec<Vec<f64>> {
    let pool = ThreadPool::new(threads);
    let device = DeviceConfig::test_tiny();
    let mut sim = Simulation::new(&pool, &device, config(kernel), bunch().sample(3000, 5));
    sim.run(3)
        .into_iter()
        .map(|t| t.potentials.potentials())
        .collect()
}

/// Same seed, pool sizes 0 / 1 / 4: the Predictive kernel's potential
/// fields must be **bit-identical** at every step — thread count may change
/// scheduling, never results.
#[test]
fn predictive_potentials_are_bit_identical_across_pool_sizes() {
    let reference = potentials_with_pool(KernelKind::Predictive, 0);
    for threads in [1usize, 4] {
        let got = potentials_with_pool(KernelKind::Predictive, threads);
        assert_eq!(reference.len(), got.len());
        for (step, (want, have)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(want.len(), have.len());
            for (i, (a, b)) in want.iter().zip(have).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "step {step}, point {i}: {threads}-thread pool diverged ({a:e} vs {b:e})"
                );
            }
        }
    }
}

/// The baselines carry no learned state that could mask scheduling effects,
/// but they share the same combinators — hold them to the same bar.
#[test]
fn baseline_kernels_are_bit_identical_across_pool_sizes() {
    for kernel in [KernelKind::TwoPhase, KernelKind::Heuristic] {
        let reference = potentials_with_pool(kernel, 0);
        let got = potentials_with_pool(kernel, 4);
        for (want, have) in reference.iter().zip(&got) {
            let same = want
                .iter()
                .zip(have)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{kernel:?} diverged between 0- and 4-thread pools");
        }
    }
}
