//! Determinism regression tests: the simulation must be a pure function of
//! its seeds — in particular independent of how many worker threads the
//! host pool runs, because every parallel combinator in `beamdyn-par` is
//! order-preserving (chunked writes to disjoint slices, ordered reduction).

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{KernelKind, Simulation, SimulationConfig};
use beamdyn::par::ThreadPool;
use beamdyn::pic::{
    deposit_cic, deposit_cic_simd, DepositSample, GridGeometry, MomentGrid, ParticleSoA,
};
use beamdyn::simt::DeviceConfig;
use proptest::prelude::*;

fn config(kernel: KernelKind) -> SimulationConfig {
    let mut cfg = SimulationConfig::standard(GridGeometry::unit(12, 12), kernel);
    cfg.rp = RpConfig {
        kappa: 4,
        dt: 0.08,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.25,
        support_y: 0.12,
        center: (0.5, 0.5),
    };
    cfg.tolerance = 1e-4;
    cfg
}

fn bunch() -> GaussianBunch {
    GaussianBunch {
        sigma_x: 0.11,
        sigma_y: 0.09,
        center_x: 0.5,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.05,
        chirp: 0.0,
    }
}

fn potentials_with_pool(kernel: KernelKind, threads: usize) -> Vec<Vec<f64>> {
    let pool = ThreadPool::new(threads);
    let device = DeviceConfig::test_tiny();
    let mut sim = Simulation::new(&pool, &device, config(kernel), bunch().sample(3000, 5));
    sim.run(3)
        .into_iter()
        .map(|t| t.potentials.potentials())
        .collect()
}

/// Same seed, pool sizes 0 / 1 / 4: the Predictive kernel's potential
/// fields must be **bit-identical** at every step — thread count may change
/// scheduling, never results.
#[test]
fn predictive_potentials_are_bit_identical_across_pool_sizes() {
    let reference = potentials_with_pool(KernelKind::Predictive, 0);
    for threads in [1usize, 4] {
        let got = potentials_with_pool(KernelKind::Predictive, threads);
        assert_eq!(reference.len(), got.len());
        for (step, (want, have)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(want.len(), have.len());
            for (i, (a, b)) in want.iter().zip(have).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "step {step}, point {i}: {threads}-thread pool diverged ({a:e} vs {b:e})"
                );
            }
        }
    }
}

/// The baselines carry no learned state that could mask scheduling effects,
/// but they share the same combinators — hold them to the same bar.
#[test]
fn baseline_kernels_are_bit_identical_across_pool_sizes() {
    for kernel in [KernelKind::TwoPhase, KernelKind::Heuristic] {
        let reference = potentials_with_pool(kernel, 0);
        let got = potentials_with_pool(kernel, 4);
        for (want, have) in reference.iter().zip(&got) {
            let same = want
                .iter()
                .zip(have)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{kernel:?} diverged between 0- and 4-thread pools");
        }
    }
}

/// An awkwardly-sized bunch (prime count → non-multiple-of-4 remainder,
/// non-multiple-of-chunk totals) with velocities, so every SoA column and
/// the vector/scalar seam in each SIMD stage is exercised.
fn awkward_samples(n: usize, seed: u64) -> Vec<DepositSample> {
    let bunch = GaussianBunch {
        sigma_x: 0.14,
        sigma_y: 0.07,
        center_x: 0.45,
        center_y: 0.55,
        charge: 1.0,
        velocity_spread: 0.03,
        drift_vx: 0.02,
        chirp: 0.4,
    };
    bunch
        .sample(n, seed)
        .particles
        .iter()
        .map(|p| DepositSample {
            x: p.x,
            y: p.y,
            weight: p.weight,
            vx: p.vx,
            vy: p.vy,
        })
        .collect()
}

fn simd_deposit_with_pool(samples: &[DepositSample], threads: usize) -> MomentGrid {
    let pool = ThreadPool::new(threads);
    let mut soa = ParticleSoA::new();
    soa.refill(samples.iter().copied());
    let mut grid = MomentGrid::zeros(GridGeometry::unit(12, 12));
    deposit_cic_simd(&pool, &mut grid, &soa);
    grid
}

/// The SIMD deposit is bit-identical to the scalar deposit (per-lane
/// identical op sequences, same chunk order, in-order scatter) and
/// independent of pool width — the SoA lane of the backend contract.
#[test]
fn simd_deposit_is_bit_identical_to_scalar_across_pool_sizes() {
    let samples = awkward_samples(4999, 0xBEEF);
    let pool = ThreadPool::new(2);
    let mut scalar = MomentGrid::zeros(GridGeometry::unit(12, 12));
    deposit_cic(&pool, &mut scalar, &samples);
    for threads in [0usize, 1, 4] {
        let simd = simd_deposit_with_pool(&samples, threads);
        for c in 0..3 {
            for (i, (a, b)) in scalar
                .component(c)
                .iter()
                .zip(simd.component(c))
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "component {c}, cell {i}: simd deposit ({threads} threads) \
                     diverged from scalar ({a:e} vs {b:e})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// AoS → SoA → AoS round-trips every column bit-exactly for arbitrary
    /// (including non-finite) particle data, and `refill` on a reused
    /// buffer leaves no stale tail behind.
    #[test]
    fn soa_roundtrip_is_bit_exact(
        xs in prop::collection::vec(-1.0e3f64..1.0e3, 1..40),
        shift in -5.0f64..5.0,
    ) {
        let samples: Vec<DepositSample> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| DepositSample {
                x,
                y: x * 0.5 + shift,
                weight: 1.0 / (i as f64 + 1.0),
                vx: x * 1e-3,
                vy: shift - x,
            })
            .collect();
        let mut soa = ParticleSoA::new();
        // Pre-fill with a longer garbage run: refill must truncate.
        soa.refill((0..97).map(|k| DepositSample {
            x: k as f64,
            y: -1.0,
            weight: f64::NAN,
            vx: 0.0,
            vy: 0.0,
        }));
        soa.refill(samples.iter().copied());
        prop_assert_eq!(soa.len(), samples.len());
        for (i, want) in samples.iter().enumerate() {
            let got = soa.sample(i);
            prop_assert_eq!(got.x.to_bits(), want.x.to_bits());
            prop_assert_eq!(got.y.to_bits(), want.y.to_bits());
            prop_assert_eq!(got.weight.to_bits(), want.weight.to_bits());
            prop_assert_eq!(got.vx.to_bits(), want.vx.to_bits());
            prop_assert_eq!(got.vy.to_bits(), want.vy.to_bits());
        }
    }
}
