//! `beamdyn-daemon` — the multi-tenant simulation service.
//!
//! Hosts a [`SessionManager`] (pooled workspaces, fair round-robin
//! stepping) behind the HTTP monitor, and — unless `--no-scenario` —
//! submits one built-in scenario session at startup so the classic
//! single-run surfaces (`/status`, `/events`, stdout step lines) behave
//! exactly as before:
//!
//! ```bash
//! beamdyn-daemon --port 6310 --steps 12 --kernel predictive
//! curl localhost:6310/status | jq .
//! curl localhost:6310/metrics | grep fallback
//! curl -N localhost:6310/events                        # one SSE event per step
//! curl -X POST localhost:6310/sessions -d '{"kernel":"heuristic","steps":4}'
//! curl localhost:6310/sessions | jq .                  # fleet listing
//! curl localhost:6310/quitz                            # graceful shutdown
//! ```
//!
//! After the built-in scenario finishes the daemon stays up serving
//! telemetry and accepting `POST /sessions` (state `done` on `/status`)
//! until `/quitz`; with `--loop` it restarts the scenario instead and runs
//! until asked to stop. Shutdown is signal-free: the main loop polls the
//! server's quit flag, so a quit request never interrupts a step
//! mid-flight.
//!
//! `--addr-file` writes the bound address (useful with `--port 0`) so
//! scripts can find an ephemeral port. Set `BEAMDYN_TRACE=1` to also write
//! a Perfetto timeline of the run on exit; by default the daemon writes no
//! files at all.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use beamdyn::core::{
    BackendKind, HealthConfig, KernelKind, ScenarioSpec, SessionManager, SessionManagerConfig,
    StatusBoard,
};
use beamdyn::obs;
use beamdyn::serve::{MonitorServer, ServeConfig, ServeContext};
use beamdyn::simt::DeviceConfig;

struct Options {
    host: String,
    port: u16,
    steps: usize,
    loop_scenarios: bool,
    kernel: KernelKind,
    backend: Option<BackendKind>,
    resolution: usize,
    particles: usize,
    threads: usize,
    step_workers: usize,
    slots: usize,
    step_delay_ms: u64,
    addr_file: Option<String>,
    no_scenario: bool,
    flight_capacity: usize,
    stall_deadline_ms: u64,
    max_pending: usize,
    slo_step_p99_ms: Option<f64>,
    alert_rules: Option<String>,
    alert_webhooks: Vec<String>,
}

impl Options {
    fn parse() -> Result<Self, String> {
        let mut opts = Self {
            host: "127.0.0.1".to_string(),
            port: 6310,
            steps: 6,
            loop_scenarios: false,
            kernel: KernelKind::Predictive,
            backend: None,
            resolution: 32,
            particles: 20_000,
            threads: 4,
            step_workers: 2,
            slots: 8,
            step_delay_ms: 0,
            addr_file: None,
            no_scenario: false,
            flight_capacity: 0,
            stall_deadline_ms: 10_000,
            max_pending: 256,
            slo_step_p99_ms: None,
            alert_rules: None,
            alert_webhooks: Vec::new(),
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < args.len() {
            let flag = args[i].as_str();
            match flag {
                "--host" => {
                    opts.host = value(&args, i, flag)?;
                    i += 1;
                }
                "--port" => {
                    opts.port = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--port must be 0..=65535".to_string())?;
                    i += 1;
                }
                "--steps" => {
                    opts.steps = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--steps must be a count".to_string())?;
                    i += 1;
                }
                "--loop" => opts.loop_scenarios = true,
                "--no-scenario" => opts.no_scenario = true,
                "--kernel" => {
                    opts.kernel = match value(&args, i, flag)?.as_str() {
                        "two-phase" => KernelKind::TwoPhase,
                        "heuristic" => KernelKind::Heuristic,
                        "predictive" => KernelKind::Predictive,
                        other => return Err(format!("unknown kernel '{other}'")),
                    };
                    i += 1;
                }
                "--backend" => {
                    let v = value(&args, i, flag)?;
                    opts.backend = Some(BackendKind::parse(&v).ok_or_else(|| {
                        format!(
                            "unknown backend '{v}' (accepted: {})",
                            BackendKind::accepted_values().join(", ")
                        )
                    })?);
                    i += 1;
                }
                "--resolution" => {
                    opts.resolution = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--resolution must be a grid size".to_string())?;
                    i += 1;
                }
                "--particles" => {
                    opts.particles = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--particles must be a count".to_string())?;
                    i += 1;
                }
                "--threads" => {
                    opts.threads = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--threads must be a count".to_string())?;
                    i += 1;
                }
                "--step-workers" => {
                    opts.step_workers = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--step-workers must be a count".to_string())?;
                    i += 1;
                }
                "--slots" => {
                    opts.slots = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--slots must be a count".to_string())?;
                    i += 1;
                }
                "--step-delay-ms" => {
                    opts.step_delay_ms = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--step-delay-ms must be milliseconds".to_string())?;
                    i += 1;
                }
                "--addr-file" => {
                    opts.addr_file = Some(value(&args, i, flag)?);
                    i += 1;
                }
                "--flight-capacity" => {
                    opts.flight_capacity = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--flight-capacity must be an event count".to_string())?;
                    i += 1;
                }
                "--stall-deadline-ms" => {
                    opts.stall_deadline_ms = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--stall-deadline-ms must be milliseconds".to_string())?;
                    i += 1;
                }
                "--max-pending" => {
                    opts.max_pending = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--max-pending must be a count".to_string())?;
                    i += 1;
                }
                "--alert-rules" => {
                    opts.alert_rules = Some(value(&args, i, flag)?);
                    i += 1;
                }
                "--alert-webhook" => {
                    let url = value(&args, i, flag)?;
                    beamdyn::core::health::parse_webhook_url(&url)
                        .map_err(|e| format!("--alert-webhook: {e}"))?;
                    opts.alert_webhooks.push(url);
                    i += 1;
                }
                "--slo-step-p99-ms" => {
                    opts.slo_step_p99_ms = Some(
                        value(&args, i, flag)?
                            .parse()
                            .map_err(|_| "--slo-step-p99-ms must be milliseconds".to_string())?,
                    );
                    i += 1;
                }
                "--help" | "-h" => {
                    println!(
                        "beamdyn-daemon: multi-tenant live-monitored beam-dynamics service\n\n\
                         --host H            bind host (default 127.0.0.1)\n\
                         --port P            bind port, 0 = ephemeral (default 6310)\n\
                         --steps N           steps for the built-in scenario (default 6)\n\
                         --loop              restart the built-in scenario until /quitz\n\
                         --no-scenario       serve sessions only; submit nothing at startup\n\
                         --kernel K          two-phase | heuristic | predictive\n\
                         --backend B         traced | native | native-simd (default: BEAMDYN_BACKEND or traced)\n\
                         --resolution R      grid R x R (default 32)\n\
                         --particles N       macro-particles (default 20000)\n\
                         --threads N         shared compute pool width (default 4)\n\
                         --step-workers N    concurrent session steppers (default 2)\n\
                         --slots N           workspace-pool slots = max admitted sessions (default 8)\n\
                         --step-delay-ms MS  pause between scenario steps (default 0)\n\
                         --addr-file PATH    write the bound address to PATH\n\
                         --flight-capacity N global flight-recorder ring size (default 2048)\n\
                         --stall-deadline-ms MS  watchdog stall deadline floor (default 10000)\n\
                         --max-pending N     admission bound; beyond it POST /sessions answers 429 (default 256)\n\
                         --slo-step-p99-ms MS  alert when fleet step p99 exceeds this budget (default off)\n\
                         --alert-rules PATH  load declarative alert rules (JSON) instead of the built-ins\n\
                         --alert-webhook URL POST alert firing/resolved transitions to URL (repeatable, http only)"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
            i += 1;
        }
        Ok(opts)
    }
}

/// The built-in scenario: the same drifting-bunch run the daemon has
/// always served, expressed as the declarative spec tenants POST.
fn scenario_spec(opts: &Options) -> ScenarioSpec {
    ScenarioSpec {
        name: "daemon".to_string(),
        kernel: opts.kernel,
        backend: opts.backend,
        nx: opts.resolution,
        ny: opts.resolution,
        particles: opts.particles,
        steps: opts.steps,
        kappa: 8,
        step_delay_ms: opts.step_delay_ms,
        ..ScenarioSpec::default()
    }
}

fn main() {
    let opts = match Options::parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("beamdyn-daemon: {e} (try --help)");
            std::process::exit(2);
        }
    };
    // Resolve the process backend up front: a BEAMDYN_BACKEND typo must be
    // a clean exit-2 diagnostic, never a panic (and never silently the
    // wrong backend).
    let default_backend = match opts
        .backend
        .map(Ok)
        .unwrap_or_else(BackendKind::try_from_env)
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("beamdyn-daemon: {e}");
            std::process::exit(2);
        }
    };

    // Live-telemetry plumbing: every step flush fans out to /events
    // subscribers; the status board backs /status.
    let events = obs::BroadcastSink::new();
    obs::install(events.clone());
    // Opt-in Perfetto timeline (BEAMDYN_TRACE=1): written on exit.
    let trace = if std::env::var("BEAMDYN_TRACE").is_ok_and(|v| v == "1") {
        Some(obs::install_perfetto("beamdyn_daemon.perfetto.json").expect("perfetto file"))
    } else {
        None
    };

    let spec = scenario_spec(&opts);
    if let Err(e) = spec.validate() {
        eprintln!("beamdyn-daemon: invalid scenario options: {e}");
        std::process::exit(2);
    }

    // Alert rules come from the spec file when given, else the built-in
    // set. A malformed file is a structured exit-2 diagnostic at startup —
    // never a panic, never a daemon silently running with default rules.
    let rules = match &opts.alert_rules {
        Some(path) => {
            let body = match std::fs::read_to_string(path) {
                Ok(body) => body,
                Err(e) => {
                    eprintln!("beamdyn-daemon: cannot read --alert-rules {path}: {e}");
                    std::process::exit(2);
                }
            };
            match beamdyn::serve::parse_rules(&body) {
                Ok(rules) => rules,
                Err(e) => {
                    eprintln!("beamdyn-daemon: invalid --alert-rules {path}: {e}");
                    eprintln!("beamdyn-daemon: {}", e.to_json());
                    std::process::exit(2);
                }
            }
        }
        None => beamdyn::core::AlertRules::builtin(),
    };

    // Size the global flight ring before anything records into it (the
    // ring is built lazily on first use and keeps its capacity for the
    // process lifetime).
    if opts.flight_capacity > 0 {
        obs::flight::configure_global_capacity(opts.flight_capacity);
    }
    let manager = SessionManager::start(SessionManagerConfig {
        threads: opts.threads.max(1),
        step_workers: opts.step_workers.max(1),
        slots: opts.slots.max(1),
        default_backend,
        device: DeviceConfig::tesla_k40(),
        health: HealthConfig {
            stall_deadline: Duration::from_millis(opts.stall_deadline_ms.max(1)),
            max_pending: opts.max_pending.max(1),
            slo_step_p99_ms: opts.slo_step_p99_ms,
            rules,
            webhooks: opts.alert_webhooks.clone(),
            ..HealthConfig::default()
        },
        ..SessionManagerConfig::default()
    });

    let status = StatusBoard::new(spec.kernel_request_name(), default_backend.name());
    let ready = Arc::new(AtomicBool::new(false));
    let server = match MonitorServer::start(
        ServeConfig {
            addr: format!("{}:{}", opts.host, opts.port),
            ..ServeConfig::default()
        },
        ServeContext {
            status: Arc::clone(&status),
            events: events.clone(),
            ready: Arc::clone(&ready),
            sessions: Some(Arc::clone(&manager)),
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "beamdyn-daemon: cannot bind {}:{}: {e}",
                opts.host, opts.port
            );
            std::process::exit(1);
        }
    };
    println!(
        "beamdyn-daemon listening on {} ({} / {}, simd lane width {}, {} workspace slots)",
        server.base_url(),
        spec.kernel_request_name(),
        default_backend.name(),
        default_backend.lane_width(),
        opts.slots.max(1),
    );
    println!(
        "endpoints: /metrics /status /events /sessions /alerts /timeline /debug/flight /healthz /readyz /quitz"
    );
    if let Some(path) = &opts.addr_file {
        if let Err(e) = std::fs::write(path, server.addr().to_string()) {
            eprintln!("beamdyn-daemon: cannot write --addr-file {path}: {e}");
            std::process::exit(1);
        }
    }

    // Per-step stdout lines, fed from the same broadcast bus /events uses.
    // Counters in a flush are cumulative, so print the per-step delta.
    let printer_stop = Arc::new(AtomicBool::new(false));
    let printer = {
        let rx = events.subscribe();
        let stop = Arc::clone(&printer_stop);
        std::thread::spawn(move || {
            let mut last_fallback: u64 = 0;
            while !stop.load(Ordering::Acquire) {
                if let Some(flush) = rx.recv_timeout(Duration::from_millis(100)) {
                    let fallback = flush
                        .counters
                        .iter()
                        .find(|(name, _)| *name == "kernels.fallback_cells")
                        .map_or(0, |&(_, v)| v);
                    println!(
                        "step {:4}: fallback {:5} cells (total {})",
                        flush.step,
                        fallback.saturating_sub(last_fallback),
                        fallback,
                    );
                    last_fallback = fallback;
                }
            }
        })
    };

    // Submit the built-in scenario (unless asked not to), mirrored onto the
    // daemon's global status board so /status tracks it like before.
    let mut scenario: Option<u64> = None;
    if opts.no_scenario {
        status.set_state("idle");
    } else {
        match manager.submit_mirrored(spec.clone(), Some(Arc::clone(&status))) {
            Ok(id) => {
                println!("scenario session {id} submitted ({} steps)", opts.steps);
                scenario = Some(id);
            }
            Err(e) => {
                eprintln!("beamdyn-daemon: cannot submit scenario: {e}");
                std::process::exit(1);
            }
        }
    }
    ready.store(true, Ordering::Release);

    let mut announced_done = false;
    while !server.quit_requested() {
        if let Some(id) = scenario {
            let finished = manager
                .state(id)
                .as_ref()
                .is_none_or(|state| state.is_terminal());
            if finished {
                if opts.loop_scenarios {
                    // Fresh scenario, same serving surfaces: counters keep
                    // accumulating, the step index restarts at 0.
                    match manager.submit_mirrored(spec.clone(), Some(Arc::clone(&status))) {
                        Ok(id) => scenario = Some(id),
                        Err(e) => {
                            eprintln!("beamdyn-daemon: cannot resubmit scenario: {e}");
                            scenario = None;
                        }
                    }
                } else {
                    scenario = None;
                    announced_done = true;
                    println!("scenario finished; serving telemetry and sessions until GET /quitz");
                }
            }
        } else if opts.no_scenario && !announced_done {
            announced_done = true;
            println!("serving sessions until GET /quitz (POST /sessions to run one)");
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    status.set_state("stopping");
    println!("quit requested; shutting down");
    manager.shutdown();
    server.join();
    printer_stop.store(true, Ordering::Release);
    let _ = printer.join();
    obs::uninstall_all();
    if trace.is_some() {
        println!("perfetto trace written to beamdyn_daemon.perfetto.json");
    }
}
