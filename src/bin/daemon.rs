//! `beamdyn-daemon` — a monitored, long-running simulation service.
//!
//! Runs a configurable multi-step simulation (optionally looping scenarios
//! forever) while serving live telemetry over HTTP:
//!
//! ```bash
//! beamdyn-daemon --port 6310 --steps 12 --kernel predictive
//! curl localhost:6310/status | jq .
//! curl localhost:6310/metrics | grep fallback
//! curl -N localhost:6310/events        # one SSE event per step
//! curl localhost:6310/quitz            # graceful shutdown
//! ```
//!
//! After the configured steps finish the daemon stays up serving the final
//! telemetry (state `done`) until `/quitz`; with `--loop` it starts the
//! scenario over instead and runs until asked to stop. Shutdown is
//! signal-free: the run loop polls the server's quit flag between steps, so
//! a quit request never interrupts a step mid-flight.
//!
//! `--addr-file` writes the bound address (useful with `--port 0`) so
//! scripts can find an ephemeral port. Set `BEAMDYN_TRACE=1` to also write
//! a Perfetto timeline of the run on exit; by default the daemon writes no
//! files at all.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use beamdyn::beam::{GaussianBunch, RpConfig};
use beamdyn::core::{BackendKind, KernelKind, Simulation, SimulationConfig, StatusBoard};
use beamdyn::obs;
use beamdyn::par::ThreadPool;
use beamdyn::pic::GridGeometry;
use beamdyn::serve::{MonitorServer, ServeConfig, ServeContext};
use beamdyn::simt::DeviceConfig;

struct Options {
    host: String,
    port: u16,
    steps: usize,
    loop_scenarios: bool,
    kernel: KernelKind,
    backend: Option<BackendKind>,
    resolution: usize,
    particles: usize,
    threads: usize,
    step_delay: Duration,
    addr_file: Option<String>,
}

impl Options {
    fn parse() -> Result<Self, String> {
        let mut opts = Self {
            host: "127.0.0.1".to_string(),
            port: 6310,
            steps: 6,
            loop_scenarios: false,
            kernel: KernelKind::Predictive,
            backend: None,
            resolution: 32,
            particles: 20_000,
            threads: 4,
            step_delay: Duration::ZERO,
            addr_file: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        while i < args.len() {
            let flag = args[i].as_str();
            match flag {
                "--host" => {
                    opts.host = value(&args, i, flag)?;
                    i += 1;
                }
                "--port" => {
                    opts.port = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--port must be 0..=65535".to_string())?;
                    i += 1;
                }
                "--steps" => {
                    opts.steps = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--steps must be a count".to_string())?;
                    i += 1;
                }
                "--loop" => opts.loop_scenarios = true,
                "--kernel" => {
                    opts.kernel = match value(&args, i, flag)?.as_str() {
                        "two-phase" => KernelKind::TwoPhase,
                        "heuristic" => KernelKind::Heuristic,
                        "predictive" => KernelKind::Predictive,
                        other => return Err(format!("unknown kernel '{other}'")),
                    };
                    i += 1;
                }
                "--backend" => {
                    let v = value(&args, i, flag)?;
                    opts.backend = Some(
                        BackendKind::parse(&v)
                            .ok_or_else(|| format!("unknown backend '{v}' (traced | native)"))?,
                    );
                    i += 1;
                }
                "--resolution" => {
                    opts.resolution = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--resolution must be a grid size".to_string())?;
                    i += 1;
                }
                "--particles" => {
                    opts.particles = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--particles must be a count".to_string())?;
                    i += 1;
                }
                "--threads" => {
                    opts.threads = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--threads must be a count".to_string())?;
                    i += 1;
                }
                "--step-delay-ms" => {
                    let ms: u64 = value(&args, i, flag)?
                        .parse()
                        .map_err(|_| "--step-delay-ms must be milliseconds".to_string())?;
                    opts.step_delay = Duration::from_millis(ms);
                    i += 1;
                }
                "--addr-file" => {
                    opts.addr_file = Some(value(&args, i, flag)?);
                    i += 1;
                }
                "--help" | "-h" => {
                    println!(
                        "beamdyn-daemon: live-monitored beam-dynamics simulation\n\n\
                         --host H            bind host (default 127.0.0.1)\n\
                         --port P            bind port, 0 = ephemeral (default 6310)\n\
                         --steps N           steps per scenario (default 6)\n\
                         --loop              restart the scenario until /quitz\n\
                         --kernel K          two-phase | heuristic | predictive\n\
                         --backend B         traced | native (default: BEAMDYN_BACKEND or traced)\n\
                         --resolution R      grid R x R (default 32)\n\
                         --particles N       macro-particles (default 20000)\n\
                         --threads N         host pool width (default 4)\n\
                         --step-delay-ms MS  pause between steps (default 0)\n\
                         --addr-file PATH    write the bound address to PATH"
                    );
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
            i += 1;
        }
        Ok(opts)
    }
}

fn build_simulation<'a>(
    pool: &'a ThreadPool,
    device: &'a DeviceConfig,
    opts: &Options,
) -> Simulation<'a> {
    let geometry = GridGeometry::unit(opts.resolution, opts.resolution);
    let mut config = SimulationConfig::standard(geometry, opts.kernel);
    // An explicit --backend wins over the BEAMDYN_BACKEND default.
    if let Some(backend) = opts.backend {
        config.backend = backend;
    }
    config.rp = RpConfig {
        kappa: 8,
        dt: 0.35 / 8.0,
        inner_points: 3,
        beta: 0.5,
        support_x: 0.42,
        support_y: 0.09,
        center: (0.4, 0.5),
    };
    config.tolerance = 1e-6;
    let bunch = GaussianBunch {
        sigma_x: 0.12,
        sigma_y: 0.03,
        center_x: 0.4,
        center_y: 0.5,
        charge: 1.0,
        velocity_spread: 0.0,
        drift_vx: 0.2,
        chirp: 0.0,
    };
    let beam = bunch.sample(opts.particles.max(1), 42);
    Simulation::new(pool, device, config, beam)
}

fn main() {
    let opts = match Options::parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("beamdyn-daemon: {e} (try --help)");
            std::process::exit(2);
        }
    };

    // Live-telemetry plumbing: every step flush fans out to /events
    // subscribers; the status board backs /status.
    let events = obs::BroadcastSink::new();
    obs::install(events.clone());
    // Opt-in Perfetto timeline (BEAMDYN_TRACE=1): written on exit.
    let trace = if std::env::var("BEAMDYN_TRACE").is_ok_and(|v| v == "1") {
        Some(obs::install_perfetto("beamdyn_daemon.perfetto.json").expect("perfetto file"))
    } else {
        None
    };

    let pool = ThreadPool::new(opts.threads.max(1));
    let device = DeviceConfig::tesla_k40();
    let mut sim = build_simulation(&pool, &device, &opts);

    let status = StatusBoard::new(sim.kernel_name(), sim.backend_name());
    let ready = Arc::new(AtomicBool::new(false));
    let server = match MonitorServer::start(
        ServeConfig {
            addr: format!("{}:{}", opts.host, opts.port),
            ..ServeConfig::default()
        },
        ServeContext {
            status: Arc::clone(&status),
            events: events.clone(),
            ready: Arc::clone(&ready),
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "beamdyn-daemon: cannot bind {}:{}: {e}",
                opts.host, opts.port
            );
            std::process::exit(1);
        }
    };
    println!(
        "beamdyn-daemon listening on {} ({} / {})",
        server.base_url(),
        sim.kernel_name(),
        sim.backend_name()
    );
    println!("endpoints: /metrics /status /events /healthz /readyz /quitz");
    if let Some(path) = &opts.addr_file {
        if let Err(e) = std::fs::write(path, server.addr().to_string()) {
            eprintln!("beamdyn-daemon: cannot write --addr-file {path}: {e}");
            std::process::exit(1);
        }
    }
    ready.store(true, Ordering::Release);

    'scenarios: loop {
        status.set_state("running");
        for _ in 0..opts.steps {
            if server.quit_requested() {
                break 'scenarios;
            }
            let telemetry = sim.run_step();
            status.record(&telemetry);
            println!(
                "step {:4}: fallback {:5} cells, gpu {:.3e} s",
                telemetry.step,
                telemetry.potentials.fallback_cells,
                telemetry.potentials.gpu_time.seconds(),
            );
            if !opts.step_delay.is_zero() {
                std::thread::sleep(opts.step_delay);
            }
        }
        if !opts.loop_scenarios {
            break;
        }
        // Fresh scenario, same serving surfaces: counters keep
        // accumulating, the step index restarts at 0.
        sim = build_simulation(&pool, &device, &opts);
    }

    // Keep serving the final telemetry until a client asks us to quit.
    status.set_state("done");
    println!("run finished; serving telemetry until GET /quitz");
    while !server.quit_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    status.set_state("stopping");
    println!("quit requested; shutting down");
    server.join();
    obs::uninstall_all();
    if trace.is_some() {
        println!("perfetto trace written to beamdyn_daemon.perfetto.json");
    }
}
