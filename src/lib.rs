//! # beamdyn
//!
//! A reproduction of *“A Machine Learning Approach for Efficient Parallel
//! Simulation of Beam Dynamics on GPUs”* (Arumugam et al., ICPP 2017) as a
//! pure-Rust workspace.
//!
//! The facade crate re-exports every subsystem:
//!
//! * [`par`] — work-stealing thread pool and data-parallel loops.
//! * [`pic`] — particle-in-cell grids, deposition, interpolation stencils.
//! * [`quad`] — adaptive / fixed-partition quadrature with access logging.
//! * [`ml`] — kNN regression, linear regression, k-means clustering.
//! * [`simt`] — SIMT GPU execution simulator (warps, caches, roofline).
//! * [`beam`] — beam physics: particles, lattice, pushers, analytic CSR.
//! * [`core`] — the paper's contribution: Predictive-RP and both baselines.
//! * [`obs`] — span timers, counters/gauges, trace sinks (see DESIGN.md
//!   "Observability").
//! * [`serve`] — live telemetry HTTP monitor: Prometheus `/metrics`, JSON
//!   `/status`, SSE `/events` (see DESIGN.md "Live telemetry serving").
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the
//! `beamdyn-daemon` binary for a monitored long-running simulation.

pub use beamdyn_beam as beam;
pub use beamdyn_core as core;
pub use beamdyn_ml as ml;
pub use beamdyn_obs as obs;
pub use beamdyn_par as par;
pub use beamdyn_pic as pic;
pub use beamdyn_quad as quad;
pub use beamdyn_serve as serve;
pub use beamdyn_simt as simt;
