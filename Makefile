# Developer entry points. `make verify` mirrors the tier-1 acceptance gate;
# `make ci` runs everything .github/workflows/ci.yml runs.

.PHONY: verify ci fmt lint test workspace-reuse kernel-smoke trace-smoke serve serve-smoke load-smoke health-smoke timeline-smoke bench bench-baseline bench-check backend-check simd-check perf-smoke clean

# Tier-1 gate: exactly what the roadmap requires to stay green.
verify:
	cargo build --release
	cargo test -q

ci: fmt lint verify
	cargo test -q --workspace
	$(MAKE) workspace-reuse
	$(MAKE) kernel-smoke
	$(MAKE) trace-smoke
	$(MAKE) serve-smoke
	$(MAKE) load-smoke
	$(MAKE) health-smoke
	$(MAKE) timeline-smoke
	$(MAKE) bench-check
	$(MAKE) backend-check
	$(MAKE) simd-check
	$(MAKE) perf-smoke

fmt:
	cargo fmt --all --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

test:
	cargo test -q --workspace

# Zero steady-state workspace growth for all three kernels, read back
# through the workspace.* obs gauges (DESIGN.md §9).
workspace-reuse:
	cargo test --release --test workspace_reuse

# Head-to-head kernel metrics must run end to end.
kernel-smoke:
	cargo run --release --example kernel_comparison

# The acceptance check for the trace feature: the quickstart example must
# emit a JSONL trace covering the paper stages, plus the always-on Perfetto
# (Chrome trace-event) timeline.
trace-smoke:
	cargo run --example quickstart --features trace
	test -s quickstart_trace.jsonl
	grep -q '"path":"step/deposit"' quickstart_trace.jsonl
	grep -q '"path":"step/potentials/cluster"' quickstart_trace.jsonl
	grep -q '"type":"flush"' quickstart_trace.jsonl
	grep -q '"histograms"' quickstart_trace.jsonl
	test -s quickstart_trace.perfetto.json
	grep -q '"traceEvents"' quickstart_trace.perfetto.json
	grep -q '"ph":"X"' quickstart_trace.perfetto.json

# A curl-able live-telemetry daemon on localhost:6310 (README "Live
# monitoring"): /metrics /status /events /healthz /readyz /quitz.
serve:
	cargo run --release --bin beamdyn-daemon -- --steps 60 --step-delay-ms 250

# End-to-end serving smoke (DESIGN.md §11): a real daemon process on an
# ephemeral port, scraped and streamed by the in-repo client, then shut
# down via /quitz. Asserts /metrics parses as Prometheus 0.0.4 and agrees
# with /status, and that live SSE step events arrive.
serve-smoke:
	cargo build --release --bin beamdyn-daemon
	BEAMDYN_DAEMON_BIN=target/release/beamdyn-daemon \
		cargo run --release -p beamdyn-bench --bin serve_smoke

# Multi-tenant session-engine load smoke: 144 concurrent sessions (mixed
# kernels and backends) against a real daemon, with fairness, pool-plateau,
# and scrape-consistency assertions.
load-smoke:
	cargo build --release --bin beamdyn-daemon
	BEAMDYN_DAEMON_BIN=target/release/beamdyn-daemon \
		cargo run --release -p beamdyn-bench --bin load_smoke

# Fleet health-engine smoke (DESIGN.md §15): a real daemon, a deliberately
# stalled session (`step_delay_ms` ≫ stall deadline on one step worker),
# the `watchdog.session_stalled` alert firing on /alerts within the
# deadline, /healthz degrading to 503 while /readyz stays 200, the flight
# rings serving the black-box events, an on-disk post-mortem dump, and a
# clean recovery after the session is deleted.
health-smoke:
	cargo build --release --bin beamdyn-daemon
	BEAMDYN_DAEMON_BIN=target/release/beamdyn-daemon \
		cargo run --release -p beamdyn-bench --bin health_smoke

# Timeline/rules/webhook smoke (DESIGN.md §16): a real daemon loading
# alert rules from a spec file (malformed files must exit 2 with a
# structured error), pushing firing→resolved transitions — with timeline
# excerpts — to a local webhook sink, and serving /timeline history whose
# counter-delta sums equal the /metrics scrape exactly.
timeline-smoke:
	cargo build --release --bin beamdyn-daemon
	BEAMDYN_DAEMON_BIN=target/release/beamdyn-daemon \
		cargo run --release -p beamdyn-bench --bin timeline_smoke

bench:
	cargo bench --workspace

# Regenerates the committed bench baseline (run after an *intentional*
# metrics change, then commit BENCH_baseline.json).
bench-baseline:
	cargo run --release -p beamdyn-bench --bin bench_baseline

# The regression gate: a fresh canonical run must stay within per-metric
# tolerances of the committed BENCH_baseline.json.
bench-check:
	cargo run --release -p beamdyn-bench --bin bench_baseline -- --check

# The differential backend gate (DESIGN.md §13): NativeFast must be
# bit-identical to TracedSimt on the golden corpus, and the smoke targets
# must run end to end on the native backend too.
backend-check:
	cargo test --release --test backend_equivalence --test rp_golden
	BEAMDYN_BACKEND=native cargo test --release --test workspace_reuse --test determinism
	BEAMDYN_BACKEND=native cargo run --release --example kernel_comparison

# The SIMD lane gate (DESIGN.md §17): NativeSimd must match the scalar
# backends within the ULP-bounded contract (plus its own committed golden
# bit patterns), and the smoke targets must run end to end on it too.
simd-check:
	cargo test --release --test backend_equivalence --test rp_golden
	BEAMDYN_BACKEND=native-simd cargo test --release --test workspace_reuse --test determinism
	BEAMDYN_BACKEND=native-simd cargo run --release --example kernel_comparison

# Hot-path perf gate (DESIGN.md §12, §17): prints the GridRp::eval scalar
# vs simd microbench, asserts the per-kernel integrand-eval budgets of the
# canonical scenario, the backend-lane count equality and wall-clock
# ordering (traced > native > simd on Two-Phase), and the SoA
# deposit+gather/push pipeline speedup floor.
perf-smoke:
	cargo run --release -p beamdyn-bench --bin perf_smoke

clean:
	cargo clean
	rm -f quickstart_trace.jsonl quickstart_trace.perfetto.json
	rm -f BENCH_*.jsonl BENCH_current.json BENCH_baseline_trace.json
