# Developer entry points. `make verify` mirrors the tier-1 acceptance gate;
# `make ci` runs everything .github/workflows/ci.yml runs.

.PHONY: verify ci fmt lint test workspace-reuse kernel-smoke trace-smoke bench clean

# Tier-1 gate: exactly what the roadmap requires to stay green.
verify:
	cargo build --release
	cargo test -q

ci: fmt lint verify
	cargo test -q --workspace
	$(MAKE) workspace-reuse
	$(MAKE) kernel-smoke
	$(MAKE) trace-smoke

fmt:
	cargo fmt --all --check

lint:
	cargo clippy --workspace --all-targets -- -D warnings

test:
	cargo test -q --workspace

# Zero steady-state workspace growth for all three kernels, read back
# through the workspace.* obs gauges (DESIGN.md §9).
workspace-reuse:
	cargo test --release --test workspace_reuse

# Head-to-head kernel metrics must run end to end.
kernel-smoke:
	cargo run --release --example kernel_comparison

# The acceptance check for the trace feature: the quickstart example must
# emit a JSONL trace covering the paper stages.
trace-smoke:
	cargo run --example quickstart --features trace
	test -s quickstart_trace.jsonl
	grep -q '"path":"step/deposit"' quickstart_trace.jsonl
	grep -q '"path":"step/potentials/cluster"' quickstart_trace.jsonl
	grep -q '"type":"flush"' quickstart_trace.jsonl

bench:
	cargo bench --workspace

clean:
	cargo clean
	rm -f quickstart_trace.jsonl BENCH_*.jsonl
